// The static determinism analyzer: ScenarioSpec → analysis report,
// without executing a single event.
//
// Reactor workloads (dear, acc) are analyzed by *constructing* the real
// application: the pipeline runs in build-only mode, wiring every node,
// logic reactor and transactor bundle exactly as an execution would, and
// the preflight hook extracts the fact table from the genuine dependency
// graphs. The stock-APD baseline has no reactor graph and is analyzed
// through its declared component model (workload_models.hpp).
#pragma once

#include <vector>

#include "analysis/report.hpp"
#include "scenario/spec.hpp"

namespace dear::analysis {

struct AnalyzeOptions {
  /// Run the timing pass (analysis/timing.hpp): chain extraction,
  /// DEAR-LAT-001..004, and the compiled StaticPlan, all attached to the
  /// report. Off by default — the structural report stays byte-identical
  /// to PR 6's.
  bool timing{false};
  /// Worker count the level-width note (DEAR-LAT-003) checks against.
  unsigned workers{1};
};

/// Analyzes one scenario: extracts facts for the spec's workload and
/// evaluates the structural and envelope rules.
[[nodiscard]] Report analyze_spec(const scenario::ScenarioSpec& spec);
[[nodiscard]] Report analyze_spec(const scenario::ScenarioSpec& spec,
                                  const AnalyzeOptions& options);

/// Analyzes every scenario of an expanded campaign matrix.
[[nodiscard]] std::vector<Report> analyze_scenarios(
    const std::vector<scenario::ScenarioSpec>& specs);
[[nodiscard]] std::vector<Report> analyze_scenarios(
    const std::vector<scenario::ScenarioSpec>& specs, const AnalyzeOptions& options);

}  // namespace dear::analysis
