#include "analysis/timing.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <unordered_set>

namespace dear::analysis {

namespace {

/// Longest WCET-weighted path through `node`'s intra-node precedence graph
/// ending at reaction i. Memoized; a visiting guard breaks the (never
/// expected) cyclic case by treating the back edge as a path break.
Duration path_wcet_ending_at(const Facts& facts, std::size_t i, std::vector<Duration>& memo,
                             std::vector<char>& visiting) {
  if (memo[i] >= 0) {
    return memo[i];
  }
  if (visiting[i] != 0) {
    return 0;
  }
  visiting[i] = 1;
  Duration best = 0;
  for (const std::size_t p : facts.reactions[i].depends_on) {
    if (facts.reactions[p].node != facts.reactions[i].node) {
      continue;
    }
    best = std::max(best, path_wcet_ending_at(facts, p, memo, visiting));
  }
  visiting[i] = 0;
  memo[i] = best + facts.reactions[i].wcet;
  return memo[i];
}

/// The tagged service-channel graph at node granularity. Parallel channels
/// between the same node pair (e.g. Preprocessing.lane alongside
/// Preprocessing.forwarded_frame) collapse into one edge carrying the
/// worst (largest) hop latency.
struct ChannelEdge {
  std::string client;
  Duration latency{0};
};

struct ChannelGraph {
  // server node → outgoing edges, both in channel declaration order.
  std::vector<std::pair<std::string, std::vector<ChannelEdge>>> adjacency;
  std::unordered_set<std::string> has_inbound;

  [[nodiscard]] const std::vector<ChannelEdge>* edges_of(const std::string& node) const {
    for (const auto& [server, edges] : adjacency) {
      if (server == node) {
        return &edges;
      }
    }
    return nullptr;
  }
};

[[nodiscard]] ChannelGraph build_channel_graph(const Facts& facts) {
  ChannelGraph graph;
  for (const ChannelFact& channel : facts.channels) {
    if (!channel.tagged) {
      continue;
    }
    graph.has_inbound.insert(channel.client_node);
    std::vector<ChannelEdge>* edges = nullptr;
    for (auto& [server, list] : graph.adjacency) {
      if (server == channel.server_node) {
        edges = &list;
        break;
      }
    }
    if (edges == nullptr) {
      graph.adjacency.emplace_back(channel.server_node, std::vector<ChannelEdge>{});
      edges = &graph.adjacency.back().second;
    }
    bool merged = false;
    for (ChannelEdge& edge : *edges) {
      if (edge.client == channel.client_node) {
        edge.latency = std::max(edge.latency, channel.hop_latency());
        merged = true;
        break;
      }
    }
    if (!merged) {
      edges->push_back(ChannelEdge{channel.client_node, channel.hop_latency()});
    }
  }
  return graph;
}

/// Enumerates every acyclic path current→target through the channel graph,
/// invoking sink(path, latency) for each. Path state is shared across the
/// recursion (backtracking DFS).
template <typename Sink>
void enumerate_paths(const ChannelGraph& graph, const std::string& current,
                     const std::string& target, std::vector<std::string>& path,
                     Duration latency, const Sink& sink) {
  if (current == target) {
    sink(path, latency);
    return;
  }
  const std::vector<ChannelEdge>* edges = graph.edges_of(current);
  if (edges == nullptr) {
    return;
  }
  for (const ChannelEdge& edge : *edges) {
    if (std::find(path.begin(), path.end(), edge.client) != path.end()) {
      continue;
    }
    path.push_back(edge.client);
    enumerate_paths(graph, edge.client, target, path, latency + edge.latency, sink);
    path.pop_back();
  }
}

#if defined(__GNUC__)
__attribute__((format(printf, 2, 3)))
#endif
void push_message(std::string& out, const char* format, ...) {
  char buffer[256];
  va_list args;
  va_start(args, format);
  const int written = std::vsnprintf(buffer, sizeof(buffer), format, args);
  va_end(args);
  if (written > 0) {
    out.append(buffer, std::min(static_cast<std::size_t>(written), sizeof(buffer) - 1));
  }
}

[[nodiscard]] std::string join_path(const std::vector<std::string>& path) {
  std::string out;
  for (const std::string& node : path) {
    if (!out.empty()) {
      out += "->";
    }
    out += node;
  }
  return out;
}

}  // namespace

const NodeTiming* TimingAnalysis::find_node(const std::string& node) const noexcept {
  for (const NodeTiming& entry : nodes) {
    if (entry.node == node) {
      return &entry;
    }
  }
  return nullptr;
}

TimingAnalysis analyze_timing(const Facts& facts) {
  TimingAnalysis out;

  // Per-node physical summary, node first-appearance order.
  std::vector<Duration> memo(facts.reactions.size(), Duration{-1});
  std::vector<char> visiting(facts.reactions.size(), 0);
  for (std::size_t i = 0; i < facts.reactions.size(); ++i) {
    const ReactionFact& reaction = facts.reactions[i];
    NodeTiming* timing = nullptr;
    for (NodeTiming& entry : out.nodes) {
      if (entry.node == reaction.node) {
        timing = &entry;
        break;
      }
    }
    if (timing == nullptr) {
      out.nodes.push_back(NodeTiming{reaction.node, Duration{0}, Duration{0}});
      timing = &out.nodes.back();
    }
    timing->critical_path_wcet =
        std::max(timing->critical_path_wcet, path_wcet_ending_at(facts, i, memo, visiting));
    if (reaction.deadline > 0 &&
        (timing->tightest_deadline == 0 || reaction.deadline < timing->tightest_deadline)) {
      timing->tightest_deadline = reaction.deadline;
    }
  }

  // Chains: sensor sources are nodes with an entry reaction and no inbound
  // tagged channel; every budget anchors one or more source→sink paths.
  const ChannelGraph graph = build_channel_graph(facts);
  std::vector<std::string> sources;
  for (const NodeTiming& entry : out.nodes) {
    if (graph.has_inbound.count(entry.node) != 0) {
      continue;
    }
    for (const ReactionFact& reaction : facts.reactions) {
      if (reaction.node == entry.node && reaction.entry) {
        sources.push_back(entry.node);
        break;
      }
    }
  }

  for (const BudgetFact& budget : facts.budgets) {
    // The budgeted member's own channels extend the chain one hop past the
    // serving node, one sink per subscriber; an unsubscribed member ends
    // the chain at the serving node itself.
    std::vector<ChannelEdge> extensions;
    for (const ChannelFact& channel : facts.channels) {
      if (channel.tagged && channel.server_node == budget.node && channel.member == budget.member) {
        extensions.push_back(ChannelEdge{channel.client_node, channel.hop_latency()});
      }
    }
    for (const std::string& source : sources) {
      std::vector<std::string> path{source};
      enumerate_paths(graph, source, budget.node, path, Duration{0},
                      [&](const std::vector<std::string>& nodes, Duration latency) {
                        const auto emit = [&](std::vector<std::string> chain_path,
                                              Duration chain_latency, const std::string& sink) {
                          ChainBound chain;
                          chain.budget_member = budget.member;
                          chain.source = source;
                          chain.sink = sink;
                          chain.logical_latency = chain_latency;
                          chain.budget = budget.budget;
                          for (const std::string& node : chain_path) {
                            if (const NodeTiming* timing = out.find_node(node)) {
                              chain.critical_path_wcet += timing->critical_path_wcet;
                            }
                          }
                          chain.path = std::move(chain_path);
                          out.chains.push_back(std::move(chain));
                        };
                        if (extensions.empty()) {
                          emit(nodes, latency, budget.node);
                        } else {
                          for (const ChannelEdge& extension : extensions) {
                            std::vector<std::string> extended = nodes;
                            extended.push_back(extension.client);
                            emit(std::move(extended), latency + extension.latency,
                                 extension.client);
                          }
                        }
                      });
    }
  }
  return out;
}

std::string TimingAnalysis::to_json(int indent) const {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  std::string out;
  out += pad + "{\n";
  out += pad + "  \"chains\": [\n";
  for (std::size_t i = 0; i < chains.size(); ++i) {
    const ChainBound& chain = chains[i];
    push_message(out, "%s    {\"budget_member\": \"%s\", \"source\": \"%s\", \"sink\": \"%s\", ",
                 pad.c_str(), chain.budget_member.c_str(), chain.source.c_str(),
                 chain.sink.c_str());
    out += "\"path\": [";
    for (std::size_t k = 0; k < chain.path.size(); ++k) {
      push_message(out, "%s\"%s\"", k == 0 ? "" : ",", chain.path[k].c_str());
    }
    push_message(out,
                 "], \"logical_latency_ns\": %" PRId64 ", \"critical_path_wcet_ns\": %" PRId64
                 ", \"budget_ns\": %" PRId64 "}%s\n",
                 static_cast<std::int64_t>(chain.logical_latency),
                 static_cast<std::int64_t>(chain.critical_path_wcet),
                 static_cast<std::int64_t>(chain.budget), i + 1 < chains.size() ? "," : "");
  }
  out += pad + "  ],\n";
  out += pad + "  \"nodes\": [\n";
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    push_message(out,
                 "%s    {\"node\": \"%s\", \"critical_path_wcet_ns\": %" PRId64
                 ", \"tightest_deadline_ns\": %" PRId64 "}%s\n",
                 pad.c_str(), nodes[i].node.c_str(),
                 static_cast<std::int64_t>(nodes[i].critical_path_wcet),
                 static_cast<std::int64_t>(nodes[i].tightest_deadline),
                 i + 1 < nodes.size() ? "," : "");
  }
  out += pad + "  ]\n";
  out += pad + "}";
  return out;
}

void check_timing(const Facts& facts, const TimingAnalysis& timing, unsigned workers,
                  std::vector<Diagnostic>& out) {
  // DEAR-LAT-004: budgets no extracted chain reaches.
  for (const BudgetFact& budget : facts.budgets) {
    bool reached = false;
    for (const ChainBound& chain : timing.chains) {
      if (chain.budget_member == budget.member) {
        reached = true;
        break;
      }
    }
    if (!reached) {
      std::string message;
      push_message(message,
                   "end-to-end budget of %" PRId64
                   " ns is declared on node '%s' but no tagged source->sink chain reaches it",
                   static_cast<std::int64_t>(budget.budget), budget.node.c_str());
      out.push_back(make_diagnostic(Rule::kUnreachableBudgetSink, budget.member, message));
    }
  }

  // DEAR-LAT-001: accumulated logical latency vs declared budget.
  for (const ChainBound& chain : timing.chains) {
    if (chain.logical_latency <= chain.budget) {
      continue;
    }
    std::string message;
    push_message(message,
                 "chain %s accumulates %" PRId64 " ns logical latency, exceeding the %" PRId64
                 " ns end-to-end budget",
                 join_path(chain.path).c_str(), static_cast<std::int64_t>(chain.logical_latency),
                 static_cast<std::int64_t>(chain.budget));
    out.push_back(make_diagnostic(Rule::kChainBudgetExceeded, chain.budget_member, message));
  }

  // DEAR-LAT-002: per chain node (deduplicated, chain order), the critical
  // path must fit inside the tightest sending deadline.
  std::vector<std::string> flagged;
  for (const ChainBound& chain : timing.chains) {
    for (const std::string& node : chain.path) {
      if (std::find(flagged.begin(), flagged.end(), node) != flagged.end()) {
        continue;
      }
      const NodeTiming* entry = timing.find_node(node);
      if (entry == nullptr || entry->tightest_deadline <= 0 ||
          entry->critical_path_wcet <= entry->tightest_deadline) {
        continue;
      }
      flagged.push_back(node);
      std::string message;
      push_message(message,
                   "critical-path WCET %" PRId64 " ns on chain node '%s' exceeds its tightest "
                   "sending deadline %" PRId64 " ns: deadline misses are statically certain",
                   static_cast<std::int64_t>(entry->critical_path_wcet), node.c_str(),
                   static_cast<std::int64_t>(entry->tightest_deadline));
      out.push_back(make_diagnostic(Rule::kChainWcetExceedsDeadline, node, message));
    }
  }

  // DEAR-LAT-003: levels wider than the worker pool run sequentialized.
  std::vector<std::string> node_order;
  for (const ReactionFact& reaction : facts.reactions) {
    if (std::find(node_order.begin(), node_order.end(), reaction.node) == node_order.end()) {
      node_order.push_back(reaction.node);
    }
  }
  for (const std::string& node : node_order) {
    for (int level = 0; level < facts.level_count; ++level) {
      unsigned width = 0;
      for (const ReactionFact& reaction : facts.reactions) {
        if (reaction.node == node && reaction.level == level) {
          ++width;
        }
      }
      if (width > workers) {
        std::string message;
        push_message(message,
                     "level %d holds %u independent reactions but only %u worker(s) are "
                     "configured: the level runs sequentialized",
                     level, width, workers);
        out.push_back(make_diagnostic(Rule::kLevelWidthOverWorkers, node, message));
      }
    }
  }
}

}  // namespace dear::analysis
