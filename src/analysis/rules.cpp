#include "analysis/rules.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <string>

namespace dear::analysis {

namespace {

/// Reachability over the APG successor relation, derived from the
/// depends_on (predecessor) lists. closure[a][b] == true when a precedes
/// b transitively — i.e. the runtime is guaranteed to run a before b at
/// any shared tag.
class Ordering {
 public:
  explicit Ordering(const Facts& facts) {
    const std::size_t n = facts.reactions.size();
    std::vector<std::vector<std::size_t>> successors(n);
    for (std::size_t i = 0; i < n; ++i) {
      for (const std::size_t dep : facts.reactions[i].depends_on) {
        successors[dep].push_back(i);
      }
    }
    closure_.assign(n, std::vector<bool>(n, false));
    std::vector<std::size_t> worklist;
    for (std::size_t start = 0; start < n; ++start) {
      worklist.assign(1, start);
      while (!worklist.empty()) {
        const std::size_t v = worklist.back();
        worklist.pop_back();
        for (const std::size_t w : successors[v]) {
          if (!closure_[start][w]) {
            closure_[start][w] = true;
            worklist.push_back(w);
          }
        }
      }
    }
  }

  [[nodiscard]] bool ordered(std::size_t a, std::size_t b) const {
    return closure_[a][b] || closure_[b][a];
  }

 private:
  std::vector<std::vector<bool>> closure_;
};

[[nodiscard]] std::string join_fqns(const Facts& facts, const std::vector<std::size_t>& members) {
  std::string out;
  for (const std::size_t member : members) {
    if (!out.empty()) {
      out += ", ";
    }
    out += facts.reactions[member].fqn;
  }
  return out;
}

void check_cycles(const Facts& facts, std::vector<Diagnostic>& out) {
  for (const std::vector<std::size_t>& cycle : facts.cycles) {
    out.push_back(make_diagnostic(
        Rule::kInstantaneousCycle, facts.reactions[cycle.front()].fqn,
        "instantaneous causality cycle through: " + join_fqns(facts, cycle)));
  }
}

void check_multi_writer(const Facts& facts, const Ordering& ordering,
                        std::vector<Diagnostic>& out) {
  for (const PortFact& port : facts.ports) {
    if (port.writers.size() < 2) {
      continue;
    }
    bool unordered = false;
    std::pair<std::size_t, std::size_t> witness{0, 0};
    for (std::size_t a = 0; a < port.writers.size() && !unordered; ++a) {
      for (std::size_t b = a + 1; b < port.writers.size(); ++b) {
        if (!ordering.ordered(port.writers[a], port.writers[b])) {
          unordered = true;
          witness = {port.writers[a], port.writers[b]};
          break;
        }
      }
    }
    if (unordered) {
      out.push_back(make_diagnostic(
          Rule::kMultiWriterPort, port.fqn,
          "port has unordered writers " + facts.reactions[witness.first].fqn + " and " +
              facts.reactions[witness.second].fqn + ": the surviving value depends on " +
              "execution order"));
    } else {
      out.push_back(make_diagnostic(
          Rule::kOrderedMultiWriterPort, port.fqn,
          "port written by " + join_fqns(facts, port.writers) +
              " (totally ordered: last write wins deterministically)"));
    }
  }
}

void check_shared_state(const Facts& facts, const Ordering& ordering,
                        std::vector<Diagnostic>& out) {
  for (const StateFact& cell : facts.states()) {
    if (cell.writers.empty()) {
      continue;
    }
    // Every accessor pair with at least one writer needs an ordering edge.
    std::vector<std::size_t> accessors = cell.writers;
    accessors.insert(accessors.end(), cell.readers.begin(), cell.readers.end());
    std::sort(accessors.begin(), accessors.end());
    accessors.erase(std::unique(accessors.begin(), accessors.end()), accessors.end());
    for (std::size_t a = 0; a < accessors.size(); ++a) {
      bool reported = false;
      for (std::size_t b = a + 1; b < accessors.size(); ++b) {
        const bool involves_writer =
            std::find(cell.writers.begin(), cell.writers.end(), accessors[a]) !=
                cell.writers.end() ||
            std::find(cell.writers.begin(), cell.writers.end(), accessors[b]) !=
                cell.writers.end();
        if (involves_writer && !ordering.ordered(accessors[a], accessors[b])) {
          out.push_back(make_diagnostic(
              Rule::kUnorderedSharedState, cell.name,
              "state '" + cell.name + "' is accessed by " + facts.reactions[accessors[a]].fqn +
                  " and " + facts.reactions[accessors[b]].fqn +
                  " (at least one a writer) with no ordering edge between them"));
          reported = true;
          break;
        }
      }
      if (reported) {
        break;  // one witness pair per state cell keeps reports readable
      }
    }
  }
}

void check_dead_reactions(const Facts& facts, std::vector<Diagnostic>& out) {
  // Fixpoint: a reaction is reachable when an action triggers it (timer,
  // startup/shutdown, physical action) or when any triggering port has a
  // reachable writer.
  const std::size_t n = facts.reactions.size();
  std::vector<bool> reachable(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    reachable[i] = facts.reactions[i].entry;
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (reachable[i]) {
        continue;
      }
      for (const std::size_t port : facts.reactions[i].triggers) {
        for (const std::size_t writer : facts.ports[port].writers) {
          if (reachable[writer]) {
            reachable[i] = true;
            changed = true;
            break;
          }
        }
        if (reachable[i]) {
          break;
        }
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (!reachable[i]) {
      out.push_back(make_diagnostic(
          Rule::kDeadReaction, facts.reactions[i].fqn,
          "no timer, startup trigger or sensor action can ever trigger this reaction"));
    }
  }
}

void check_deadline_budgets(const Facts& facts, std::vector<Diagnostic>& out) {
  // Per node: the tightest sending deadline must cover the largest
  // modeled execution-time upper bound on that node. Conservative (max,
  // not chain sum): fires only on certain violations, so clean configs
  // never see a false positive.
  std::vector<std::string> nodes;
  for (const ReactionFact& reaction : facts.reactions) {
    if (std::find(nodes.begin(), nodes.end(), reaction.node) == nodes.end()) {
      nodes.push_back(reaction.node);
    }
  }
  for (const std::string& node : nodes) {
    Duration deadline_min = 0;
    Duration wcet_max = 0;
    for (const ReactionFact& reaction : facts.reactions) {
      if (reaction.node != node) {
        continue;
      }
      if (reaction.deadline > 0 && (deadline_min == 0 || reaction.deadline < deadline_min)) {
        deadline_min = reaction.deadline;
      }
      wcet_max = std::max(wcet_max, reaction.wcet);
    }
    if (deadline_min > 0 && wcet_max > 0 && deadline_min < wcet_max) {
      char buffer[192];
      std::snprintf(buffer, sizeof(buffer),
                    "tightest sending deadline %" PRId64 " ns sits below the largest modeled "
                    "WCET %" PRId64 " ns on this node: deadline misses are guaranteed reachable",
                    static_cast<std::int64_t>(deadline_min),
                    static_cast<std::int64_t>(wcet_max));
      out.push_back(make_diagnostic(Rule::kDeadlineBelowWcet, node, buffer));
    }
  }
}

void check_channels(const Facts& facts, std::vector<Diagnostic>& out) {
  for (const ChannelFact& channel : facts.channels) {
    if (!channel.tagged) {
      out.push_back(make_diagnostic(
          Rule::kUntaggedChannel, channel.member,
          "channel " + channel.server_node + " -> " + channel.client_node +
              " carries no logical tags: the receiver processes messages in physical " +
              "arrival order"));
    }
  }
}

}  // namespace

std::vector<Diagnostic> check_structure(const Facts& facts) {
  std::vector<Diagnostic> out;
  const Ordering ordering(facts);
  check_cycles(facts, out);
  check_multi_writer(facts, ordering, out);
  check_shared_state(facts, ordering, out);
  check_dead_reactions(facts, out);
  check_deadline_budgets(facts, out);
  check_channels(facts, out);
  return out;
}

std::vector<Diagnostic> check_envelope(const scenario::ScenarioSpec& spec, const Facts& facts) {
  std::vector<Diagnostic> out;

  // The latency bound the deployment actually assumes: the tightest L of
  // any tagged channel, falling back to the repo-wide default bound.
  Duration bound = 0;
  for (const ChannelFact& channel : facts.channels) {
    if (channel.tagged && channel.latency_bound > 0 &&
        (bound == 0 || channel.latency_bound < bound)) {
      bound = channel.latency_bound;
    }
  }
  if (bound == 0) {
    bound = scenario::kSvcLatencyBound;
  }
  if (spec.svc_latency_max > bound) {
    char buffer[192];
    std::snprintf(buffer, sizeof(buffer),
                  "service-link latency max %" PRId64 " ns exceeds the safe-to-process bound "
                  "L = %" PRId64 " ns: messages may arrive after their release tag passed",
                  static_cast<std::int64_t>(spec.svc_latency_max),
                  static_cast<std::int64_t>(bound));
    out.push_back(make_diagnostic(Rule::kEnvelopeLatency, "svc_latency_max", buffer));
  }
  if (spec.net_drop_probability > 0.0) {
    char buffer[128];
    std::snprintf(buffer, sizeof(buffer),
                  "drop probability %.3f violates the reliable-delivery assumption",
                  spec.net_drop_probability);
    out.push_back(make_diagnostic(Rule::kEnvelopeLossyLink, "net_drop_probability", buffer));
  }
  if (spec.deadline_scale < 1.0) {
    char buffer[128];
    std::snprintf(buffer, sizeof(buffer),
                  "deadline_scale %.2f pushes deadlines below the budgeted WCETs",
                  spec.deadline_scale);
    out.push_back(make_diagnostic(Rule::kEnvelopeDeadlineScale, "deadline_scale", buffer));
  }
  if (spec.exec_time_scale > 1.0) {
    char buffer[128];
    std::snprintf(buffer, sizeof(buffer),
                  "exec_time_scale %.2f pushes execution times beyond the budgeted WCETs",
                  spec.exec_time_scale);
    out.push_back(make_diagnostic(Rule::kEnvelopeExecScale, "exec_time_scale", buffer));
  }

  // --- fault-tolerance configuration (src/ft/) -------------------------------
  // Both rules are warnings by design: an injected crash is still
  // bit-reproducible, so neither finding breaks the determinism claim.
  if (spec.service_faults.any() && !spec.retry.enabled()) {
    out.push_back(make_diagnostic(
        Rule::kFtNoFallback, "service_faults",
        "scenario injects service faults (crash/error/omission/churn) but no retry "
        "budget is configured: affected calls and samples fail silently"));
  }
  if (spec.retry.enabled()) {
    Duration tightest = 0;
    std::string tightest_member;
    for (const BudgetFact& budget : facts.budgets) {
      if (budget.budget > 0 && (tightest == 0 || budget.budget < tightest)) {
        tightest = budget.budget;
        tightest_member = budget.member;
      }
    }
    const Duration worst = spec.retry.worst_case_latency();
    if (tightest > 0 && worst > tightest) {
      char buffer[224];
      std::snprintf(buffer, sizeof(buffer),
                    "retry worst case %" PRId64 " ns (%u attempts x %" PRId64
                    " ns timeout + linear backoff) exceeds the tightest end-to-end budget "
                    "%" PRId64 " ns on %s",
                    static_cast<std::int64_t>(worst), spec.retry.max_attempts,
                    static_cast<std::int64_t>(spec.retry.timeout),
                    static_cast<std::int64_t>(tightest), tightest_member.c_str());
      out.push_back(make_diagnostic(Rule::kFtRetryBudgetOverChain, "retry", buffer));
    }
  }
  return out;
}

bool has_errors(const std::vector<Diagnostic>& diagnostics) noexcept {
  return count_severity(diagnostics, Severity::kError) > 0;
}

bool has_gating_errors(const std::vector<Diagnostic>& diagnostics, Gate gate) noexcept {
  for (const Diagnostic& diagnostic : diagnostics) {
    if (diagnostic.severity != Severity::kError) {
      continue;
    }
    if (gate == Gate::kStructural && (diagnostic.rule == Rule::kDeadlineBelowWcet ||
                                      diagnostic.rule == Rule::kChainWcetExceedsDeadline)) {
      continue;
    }
    return true;
  }
  return false;
}

std::size_t count_severity(const std::vector<Diagnostic>& diagnostics,
                           Severity severity) noexcept {
  std::size_t count = 0;
  for (const Diagnostic& diagnostic : diagnostics) {
    if (diagnostic.severity == severity) {
      ++count;
    }
  }
  return count;
}

}  // namespace dear::analysis
