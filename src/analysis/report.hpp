// The analysis report: facts + diagnostics for one analyzed scenario, and
// the machine-readable "analysis-report-v1" JSON schema emitted by
// dear_lint and consumed by the CI gate (docs/static_analysis.md
// documents the schema).
#pragma once

#include <string>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "analysis/facts.hpp"
#include "analysis/plan.hpp"
#include "analysis/timing.hpp"

namespace dear::analysis {

struct Report {
  /// Workload identity ("dear", "nondet", "acc", or "app" for ad-hoc
  /// AppBuilder::validate() runs).
  std::string workload;
  /// Scenario identity (ScenarioSpec::describe(); empty for plain
  /// structural validation).
  std::string scenario;
  Facts facts;
  std::vector<Diagnostic> diagnostics;
  /// The runtime oracle's verdict for the same scenario
  /// (ScenarioSpec::expect_deterministic()); meaningful only when the
  /// report was produced from a spec.
  bool expected_deterministic{true};

  /// Filled when the timing pass ran (AnalyzeOptions::timing /
  /// `dear_lint --timing`): chain bounds, per-node critical paths, and
  /// the compiled schedule plan. The plan is empty for workloads without
  /// a precedence graph (stock APD).
  bool timing_evaluated{false};
  TimingAnalysis timing;
  StaticPlan plan;

  [[nodiscard]] std::size_t error_count() const noexcept;
  [[nodiscard]] std::size_t warning_count() const noexcept;
  /// The static verdict: no error-severity finding.
  [[nodiscard]] bool deterministic() const noexcept { return error_count() == 0; }
  /// True when the static verdict agrees with the runtime oracle.
  [[nodiscard]] bool verdict_matches() const noexcept {
    return deterministic() == expected_deterministic;
  }

  /// One report as a JSON object (part of the collection schema).
  [[nodiscard]] std::string to_json(int indent = 0) const;
};

/// The top-level "analysis-report-v1" document over a set of reports.
[[nodiscard]] std::string report_collection_json(const std::vector<Report>& reports);

}  // namespace dear::analysis
