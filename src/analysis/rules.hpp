// The static determinism rules, evaluated over an extracted fact table.
//
// Two rule families:
//   * structural rules (check_structure) judge the program graph itself —
//     cycles, write conflicts, unordered shared state, dead reactions,
//     deadline budgets, untagged channels;
//   * envelope rules (check_envelope) judge a ScenarioSpec against the
//     paper's assumption envelope (reliable delivery, latency within L,
//     deadlines at or above the budgeted WCETs).
//
// Contract (asserted by the campaign-oracle tests): a scenario produces
// no error-severity diagnostic if and only if ScenarioSpec::
// expect_deterministic() holds — the static verdict and the runtime
// determinism checker agree on every point of the evaluation space.
#pragma once

#include <vector>

#include "analysis/diagnostics.hpp"
#include "analysis/facts.hpp"
#include "scenario/spec.hpp"

namespace dear::analysis {

[[nodiscard]] std::vector<Diagnostic> check_structure(const Facts& facts);

[[nodiscard]] std::vector<Diagnostic> check_envelope(const scenario::ScenarioSpec& spec,
                                                     const Facts& facts);

[[nodiscard]] bool has_errors(const std::vector<Diagnostic>& diagnostics) noexcept;

// Which error findings abort execution in AppBuilder::validate():
//   * kAll        — any error-severity diagnostic (the lint gate);
//   * kStructural — only graph/tag errors. Timing-budget findings
//     (DEAR-TIME-001) are still reported but do not throw: a pipeline
//     configured with deadlines below the modeled WCETs is a legal
//     out-of-envelope experiment whose deadline misses the runtime
//     counts as observable errors (the paper's error-tradeoff runs).
enum class Gate : std::uint8_t { kAll, kStructural };

[[nodiscard]] bool has_gating_errors(const std::vector<Diagnostic>& diagnostics,
                                     Gate gate) noexcept;

[[nodiscard]] std::size_t count_severity(const std::vector<Diagnostic>& diagnostics,
                                         Severity severity) noexcept;

}  // namespace dear::analysis
