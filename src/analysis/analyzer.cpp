#include "analysis/analyzer.hpp"

#include <iterator>
#include <utility>

#include "analysis/app_facts.hpp"
#include "analysis/plan.hpp"
#include "analysis/rules.hpp"
#include "analysis/timing.hpp"
#include "analysis/workload_models.hpp"
#include "dear/app_builder.hpp"
#include "scenario/workloads.hpp"

namespace dear::analysis {

namespace {

[[nodiscard]] Facts extract_workload(const scenario::ScenarioSpec& spec) {
  Facts facts;
  switch (spec.workload) {
    case scenario::Workload::kBrakeDear: {
      brake::DearScenarioConfig config = scenario::to_dear_config(spec);
      config.build_only = true;
      config.preflight = [&facts](dear::AppBuilder& app) { facts = extract_app(app); };
      (void)brake::run_dear_pipeline(config);
      facts.workload = "dear";
      break;
    }
    case scenario::Workload::kAcc: {
      acc::AccScenarioConfig config = scenario::to_acc_config(spec);
      config.build_only = true;
      config.preflight = [&facts](dear::AppBuilder& app) { facts = extract_app(app); };
      (void)acc::run_acc_pipeline(config);
      facts.workload = "acc";
      break;
    }
    case scenario::Workload::kBrakeNondet:
      facts = nondet_brake_model();
      break;
  }
  return facts;
}

}  // namespace

Report analyze_spec(const scenario::ScenarioSpec& spec) {
  return analyze_spec(spec, AnalyzeOptions{});
}

Report analyze_spec(const scenario::ScenarioSpec& spec, const AnalyzeOptions& options) {
  Report report;
  report.workload = std::string(scenario::to_string(spec.workload));
  report.scenario = spec.name.empty() ? spec.describe() : spec.name;
  report.expected_deterministic = spec.expect_deterministic();
  report.facts = extract_workload(spec);
  report.diagnostics = check_structure(report.facts);
  std::vector<Diagnostic> envelope = check_envelope(spec, report.facts);
  report.diagnostics.insert(report.diagnostics.end(),
                            std::make_move_iterator(envelope.begin()),
                            std::make_move_iterator(envelope.end()));
  if (options.timing) {
    report.timing = analyze_timing(report.facts);
    check_timing(report.facts, report.timing, options.workers, report.diagnostics);
    report.plan = build_plan(report.facts);
    report.timing_evaluated = true;
  }
  return report;
}

std::vector<Report> analyze_scenarios(const std::vector<scenario::ScenarioSpec>& specs) {
  return analyze_scenarios(specs, AnalyzeOptions{});
}

std::vector<Report> analyze_scenarios(const std::vector<scenario::ScenarioSpec>& specs,
                                      const AnalyzeOptions& options) {
  std::vector<Report> reports;
  reports.reserve(specs.size());
  for (const scenario::ScenarioSpec& spec : specs) {
    reports.push_back(analyze_spec(spec, options));
  }
  return reports;
}

}  // namespace dear::analysis
