#include "analysis/app_facts.hpp"

#include <string>

#include "analysis/extract.hpp"
#include "dear/app_builder.hpp"

namespace dear::analysis {

namespace {

/// Strips the hosting node's name prefix from a transactor name
/// ("preproc.VideoAdapter.frame" → "VideoAdapter.frame").
[[nodiscard]] std::string member_suffix(const AppBuilder::TransactorRecord& record) {
  const std::string& name = record.transactor->name();
  const std::string prefix = record.node->name() + ".";
  if (name.rfind(prefix, 0) == 0) {
    return name.substr(prefix.size());
  }
  return name;
}

}  // namespace

Facts extract_app(const AppBuilder& app) {
  std::vector<NodeContext> contexts;
  contexts.reserve(app.nodes().size());
  for (const auto& node : app.nodes()) {
    contexts.push_back(NodeContext{node->name(), &node->environment()});
  }
  Facts facts = extract(contexts);
  facts.workload = "app";

  // Cross-binding channels: every client-side member transactor pairs
  // with the server-side transactor of the same <Interface>.<member>.
  // Declaration order (servers first, per the AppBuilder contract) keeps
  // the table deterministic.
  const auto& records = app.transactor_records();
  for (const auto& client : records) {
    if (client.server) {
      continue;
    }
    const std::string suffix = member_suffix(client);
    for (const auto& server : records) {
      if (!server.server || member_suffix(server) != suffix) {
        continue;
      }
      ChannelFact channel;
      channel.member = suffix;
      channel.server_node = server.node->name();
      channel.client_node = client.node->name();
      channel.latency_bound = client.transactor->config().latency_bound;
      channel.deadline = server.transactor->config().deadline;
      channel.clock_error = client.transactor->config().clock_error_bound;
      channel.tagged = true;
      facts.channels.push_back(std::move(channel));
      break;
    }
  }

  // End-to-end budgets declared on served descriptors (declaration order).
  for (const auto& budget : app.budget_records()) {
    facts.budgets.push_back(BudgetFact{budget.member, budget.node->name(), budget.budget});
  }
  return facts;
}

}  // namespace dear::analysis
