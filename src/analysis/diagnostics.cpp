#include "analysis/diagnostics.hpp"

namespace dear::analysis {

std::string_view rule_id(Rule rule) noexcept {
  switch (rule) {
    case Rule::kInstantaneousCycle:
      return "DEAR-GRAPH-001";
    case Rule::kMultiWriterPort:
      return "DEAR-GRAPH-002";
    case Rule::kUnorderedSharedState:
      return "DEAR-GRAPH-003";
    case Rule::kDeadReaction:
      return "DEAR-GRAPH-004";
    case Rule::kOrderedMultiWriterPort:
      return "DEAR-GRAPH-005";
    case Rule::kDeadlineBelowWcet:
      return "DEAR-TIME-001";
    case Rule::kUntaggedChannel:
      return "DEAR-TAG-001";
    case Rule::kEnvelopeLatency:
      return "DEAR-ENV-001";
    case Rule::kEnvelopeLossyLink:
      return "DEAR-ENV-002";
    case Rule::kEnvelopeDeadlineScale:
      return "DEAR-ENV-003";
    case Rule::kEnvelopeExecScale:
      return "DEAR-ENV-004";
    case Rule::kChainBudgetExceeded:
      return "DEAR-LAT-001";
    case Rule::kChainWcetExceedsDeadline:
      return "DEAR-LAT-002";
    case Rule::kLevelWidthOverWorkers:
      return "DEAR-LAT-003";
    case Rule::kUnreachableBudgetSink:
      return "DEAR-LAT-004";
    case Rule::kFtNoFallback:
      return "DEAR-FT-001";
    case Rule::kFtRetryBudgetOverChain:
      return "DEAR-FT-002";
  }
  return "DEAR-UNKNOWN";
}

std::string_view rule_summary(Rule rule) noexcept {
  switch (rule) {
    case Rule::kInstantaneousCycle:
      return "instantaneous causality cycle in the precedence graph";
    case Rule::kMultiWriterPort:
      return "port written by multiple unordered reactions";
    case Rule::kUnorderedSharedState:
      return "mutable state shared by reactions without an ordering edge";
    case Rule::kDeadReaction:
      return "reaction unreachable from any timer, startup or sensor trigger";
    case Rule::kOrderedMultiWriterPort:
      return "port with multiple totally ordered writers (last write wins)";
    case Rule::kDeadlineBelowWcet:
      return "sending deadline below the modeled worst-case execution time";
    case Rule::kUntaggedChannel:
      return "service channel carries no logical tags";
    case Rule::kEnvelopeLatency:
      return "service-link latency exceeds the safe-to-process bound L";
    case Rule::kEnvelopeLossyLink:
      return "lossy service link violates the reliable-delivery assumption";
    case Rule::kEnvelopeDeadlineScale:
      return "deadlines scaled below the budgeted WCETs";
    case Rule::kEnvelopeExecScale:
      return "execution times scaled beyond the budgeted WCETs";
    case Rule::kChainBudgetExceeded:
      return "chain logical latency exceeds the declared end-to-end budget";
    case Rule::kChainWcetExceedsDeadline:
      return "critical-path WCET exceeds the tightest deadline on the chain";
    case Rule::kLevelWidthOverWorkers:
      return "precedence-graph level wider than the configured worker count";
    case Rule::kUnreachableBudgetSink:
      return "end-to-end budget whose sink no tagged chain reaches";
    case Rule::kFtNoFallback:
      return "service faults injected without retry budget or fallback";
    case Rule::kFtRetryBudgetOverChain:
      return "retry budget worst case exceeds the end-to-end chain budget";
  }
  return "unknown rule";
}

Severity rule_severity(Rule rule) noexcept {
  switch (rule) {
    case Rule::kDeadReaction:
    case Rule::kChainBudgetExceeded:
    case Rule::kUnreachableBudgetSink:
    // The FT rules flag tolerance-configuration smells, not determinism
    // violations: an injected crash is still bit-reproducible, so these
    // must stay warnings (the severity⟺expect_deterministic oracle).
    case Rule::kFtNoFallback:
    case Rule::kFtRetryBudgetOverChain:
      return Severity::kWarning;
    case Rule::kOrderedMultiWriterPort:
    case Rule::kLevelWidthOverWorkers:
      return Severity::kNote;
    default:
      return Severity::kError;
  }
}

std::string_view to_string(Severity severity) noexcept {
  switch (severity) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

Diagnostic make_diagnostic(Rule rule, std::string subject, std::string message) {
  return Diagnostic{rule, rule_severity(rule), std::move(subject), std::move(message)};
}

AnalysisError::AnalysisError(const std::string& what, std::vector<Diagnostic> diagnostics)
    : std::runtime_error(what), diagnostics_(std::move(diagnostics)) {}

}  // namespace dear::analysis
