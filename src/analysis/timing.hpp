// Static end-to-end timing analysis over the fact table.
//
// PR 6's rules judge every channel and reaction point-wise; this pass
// composes the same facts along source→sink chains. The DEAR timing model
// makes that composition exact: each tagged hop delays the logical tag by
// the sender's deadline D plus the receiver's safe-to-process bound L and
// clock-error bound E (ChannelFact::hop_latency), so the logical latency
// of a chain is a plain sum — no measurement, no simulation. Physical
// feasibility reduces to the per-node critical path: the longest
// WCET-weighted path through a node's precedence graph must fit inside
// the node's tightest sending deadline, or deadline misses are certain.
//
// Outputs feed three consumers: DEAR-LAT-001..004 diagnostics
// (check_timing), the per-scenario timing verdicts in campaign reports,
// and the analysis-report-v1 JSON surfaced by `dear_lint --timing`.
#pragma once

#include <string>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "analysis/facts.hpp"

namespace dear::analysis {

/// One source→sink path through the tagged service-channel graph, bound
/// to the end-to-end budget it is checked against.
struct ChainBound {
  std::string budget_member;  // "<Interface>.<member>" the budget anchors to
  std::string source;         // sensor-side node (entry reactions, no inbound channel)
  std::string sink;           // final receiving node of the chain
  std::vector<std::string> path;  // node names, source..sink inclusive
  /// Σ hop_latency() along the path: the logical delay between the sensor
  /// tag and the tag at which the sink releases the sample.
  Duration logical_latency{0};
  /// Σ per-node critical-path WCET over the chain's nodes: the physical
  /// execution bound of one sample traversing the chain.
  Duration critical_path_wcet{0};
  Duration budget{0};
};

/// Per-node physical timing summary.
struct NodeTiming {
  std::string node;
  /// Longest WCET-weighted path through the node's intra-node precedence
  /// graph (0 when no reaction carries a cost model).
  Duration critical_path_wcet{0};
  /// Tightest positive sending deadline on the node (0 when none).
  Duration tightest_deadline{0};
};

struct TimingAnalysis {
  std::vector<ChainBound> chains;
  std::vector<NodeTiming> nodes;  // node first-appearance order

  [[nodiscard]] const NodeTiming* find_node(const std::string& node) const noexcept;
  /// Canonical JSON (same conventions as Facts::to_json).
  [[nodiscard]] std::string to_json(int indent = 0) const;
};

/// Extracts every budget-anchored chain and the per-node critical paths.
/// Pure function of the fact table; deterministic enumeration order
/// (budget declaration order, then node first-appearance order).
[[nodiscard]] TimingAnalysis analyze_timing(const Facts& facts);

/// Evaluates DEAR-LAT-001..004 against a timing analysis. `workers` is the
/// per-node worker count the level-width note (DEAR-LAT-003) checks
/// against.
void check_timing(const Facts& facts, const TimingAnalysis& timing, unsigned workers,
                  std::vector<Diagnostic>& out);

}  // namespace dear::analysis
