// The fact table produced by the static verifier's extraction pass.
//
// Facts are a workload-neutral intermediate representation: the reactor
// extraction (extract.hpp) fills it from real DependencyGraphs, the
// AppBuilder extraction (app_facts.hpp) adds the cross-binding service
// channels, and the stock-APD model (workload_models.cpp) declares the
// same structures for the non-reactor baseline. Rules (rules.hpp) only
// ever see this table, so every workload is judged by the same criteria.
//
// Serialization is canonical: to_json() emits the tables in extraction
// order (node declaration order, then reactor registration order), so the
// digest over it is stable across platforms and runs — the level table
// digest is one of the repo's golden-test anchors.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/time.hpp"

namespace dear::analysis {

/// One reaction (or, for the stock-APD model, one callback/handler
/// context). Port/reaction references are indices into Facts::ports resp.
/// Facts::reactions.
struct ReactionFact {
  std::string node;
  std::string fqn;
  /// APG level; -1 when the reaction sits on an instantaneous cycle (or
  /// the workload has no precedence graph at all).
  int level{-1};
  /// Triggered by an action (timer, startup, physical/sensor action):
  /// an entry point of the reachability analysis.
  bool entry{false};
  Duration deadline{0};
  /// Modeled execution-time upper bound; 0 when the reaction carries no
  /// cost model.
  Duration wcet{0};
  std::vector<std::size_t> triggers;            // port indices
  std::vector<std::size_t> reads;               // port indices (non-triggering)
  std::vector<std::size_t> effects;             // port indices
  std::vector<std::string> trigger_actions;     // action names
  std::vector<std::size_t> depends_on;          // APG predecessors (reaction indices)
  std::vector<std::string> state_reads;
  std::vector<std::string> state_writes;
};

/// One source port (binding chains are resolved to their source) or, for
/// the stock-APD model, one one-slot input buffer.
struct PortFact {
  std::string fqn;
  std::string node;
  std::vector<std::size_t> writers;  // reaction indices
  std::vector<std::size_t> readers;  // reaction indices (triggered + reads)
};

/// One cross-binding service connection (server transactor → client
/// transactor), carrying the timing assumptions both sides were
/// configured with.
struct ChannelFact {
  std::string member;  // "<Interface>.<member>"
  std::string server_node;
  std::string client_node;
  /// Safe-to-process latency bound L assumed by the receiving transactor.
  Duration latency_bound{0};
  /// Sending deadline D folded into the wire tag by the server side.
  Duration deadline{0};
  /// Clock synchronization error bound E assumed by the receiving
  /// transactor (0 when both SWCs share a platform).
  Duration clock_error{0};
  /// False when the channel carries no logical tags (stock APD).
  bool tagged{true};

  /// Logical latency one hop adds to a chain: the sender folds D into the
  /// wire tag and the receiver releases at wire + L + E (paper §III.B).
  [[nodiscard]] Duration hop_latency() const noexcept {
    return deadline + latency_bound + clock_error;
  }
};

/// One declared end-to-end latency budget (ara::meta::EndToEndBudget on a
/// served descriptor): samples emitted on `member` must arrive within
/// `budget` of the chain's sensor tag.
struct BudgetFact {
  std::string member;  // "<Interface>.<member>"
  std::string node;    // serving node
  Duration budget{0};
};

/// Derived view: one named mutable state cell and its accessors.
struct StateFact {
  std::string name;
  std::vector<std::size_t> readers;
  std::vector<std::size_t> writers;
};

struct Facts {
  std::string workload;
  std::vector<ReactionFact> reactions;
  std::vector<PortFact> ports;
  std::vector<ChannelFact> channels;
  std::vector<BudgetFact> budgets;
  /// Nontrivial strongly-connected components of the reaction graph
  /// (instantaneous cycles), as sorted reaction-index lists.
  std::vector<std::vector<std::size_t>> cycles;
  /// Max level count over all nodes (levels are per-node).
  int level_count{0};

  /// Collects the state-cell table from the reactions' declarations.
  [[nodiscard]] std::vector<StateFact> states() const;

  /// The level/partition table: per node, reactions grouped by level.
  /// Canonical text form, one line per "node/level: fqn fqn ...".
  [[nodiscard]] std::string level_table() const;

  /// Canonical JSON serialization of every table (deterministic: pure
  /// function of the extraction order).
  [[nodiscard]] std::string to_json(int indent = 0) const;

  /// FNV-1a digest over to_json(): the golden-test anchor for "the
  /// analyzer still sees the same program".
  [[nodiscard]] std::uint64_t digest() const;
};

/// FNV-1a 64-bit over a byte string (shared by Facts::digest and tests).
[[nodiscard]] std::uint64_t fnv1a64(std::string_view bytes) noexcept;

}  // namespace dear::analysis
