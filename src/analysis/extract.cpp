#include "analysis/extract.hpp"

#include <algorithm>
#include <unordered_map>

#include "reactor/action.hpp"
#include "reactor/environment.hpp"
#include "reactor/graph.hpp"
#include "reactor/port.hpp"
#include "reactor/reaction.hpp"

namespace dear::analysis {

namespace {

[[nodiscard]] const reactor::BasePort* source_of(const reactor::BasePort* port) {
  while (port->inward_binding() != nullptr) {
    port = port->inward_binding();
  }
  return port;
}

/// Iterative Tarjan SCC over the adjacency; returns nontrivial components
/// (size > 1, or a self-loop) as sorted index lists, in discovery order.
[[nodiscard]] std::vector<std::vector<std::size_t>> nontrivial_sccs(
    const std::vector<std::vector<std::size_t>>& adjacency) {
  const std::size_t n = adjacency.size();
  constexpr std::size_t kUnvisited = static_cast<std::size_t>(-1);
  std::vector<std::size_t> index(n, kUnvisited);
  std::vector<std::size_t> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<std::size_t> stack;
  std::vector<std::vector<std::size_t>> components;
  std::size_t counter = 0;

  struct Frame {
    std::size_t vertex;
    std::size_t edge;
  };
  for (std::size_t root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) {
      continue;
    }
    std::vector<Frame> frames{{root, 0}};
    index[root] = lowlink[root] = counter++;
    stack.push_back(root);
    on_stack[root] = true;
    while (!frames.empty()) {
      Frame& frame = frames.back();
      const std::size_t v = frame.vertex;
      if (frame.edge < adjacency[v].size()) {
        const std::size_t w = adjacency[v][frame.edge++];
        if (index[w] == kUnvisited) {
          index[w] = lowlink[w] = counter++;
          stack.push_back(w);
          on_stack[w] = true;
          frames.push_back({w, 0});
        } else if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
        continue;
      }
      if (lowlink[v] == index[v]) {
        std::vector<std::size_t> component;
        while (true) {
          const std::size_t w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          component.push_back(w);
          if (w == v) {
            break;
          }
        }
        const bool self_loop =
            component.size() == 1 &&
            std::find(adjacency[v].begin(), adjacency[v].end(), v) != adjacency[v].end();
        if (component.size() > 1 || self_loop) {
          std::sort(component.begin(), component.end());
          components.push_back(std::move(component));
        }
      }
      frames.pop_back();
      if (!frames.empty()) {
        const std::size_t parent = frames.back().vertex;
        lowlink[parent] = std::min(lowlink[parent], lowlink[v]);
      }
    }
  }
  return components;
}

}  // namespace

void extract_node(Facts& facts, const NodeContext& node) {
  reactor::DependencyGraph graph(node.environment->top_level());
  const auto& analysis = graph.analyze();
  const auto& reactions = graph.reactions();
  const std::size_t base = facts.reactions.size();

  std::unordered_map<const reactor::BasePort*, std::size_t> port_index;
  const auto ensure_port = [&](const reactor::BasePort* port) {
    const reactor::BasePort* source = source_of(port);
    const auto [it, inserted] = port_index.try_emplace(source, facts.ports.size());
    if (inserted) {
      PortFact fact;
      fact.fqn = source->fqn();
      fact.node = node.name;
      for (const reactor::Reaction* writer : reactor::DependencyGraph::writers_of(*source)) {
        fact.writers.push_back(base + graph.index_of(*writer));
      }
      facts.ports.push_back(std::move(fact));
    }
    return it->second;
  };

  for (std::size_t i = 0; i < reactions.size(); ++i) {
    const reactor::Reaction* reaction = reactions[i];
    ReactionFact fact;
    fact.node = node.name;
    fact.fqn = reaction->fqn();
    const bool cyclic = std::find(analysis.cyclic.begin(), analysis.cyclic.end(), i) !=
                        analysis.cyclic.end();
    fact.level = cyclic ? -1 : graph.level_of(i);
    fact.entry = !reaction->trigger_actions().empty();
    fact.deadline = reaction->deadline();
    fact.wcet = reaction->has_modeled_cost() ? reaction->modeled_cost().upper_bound() : 0;
    for (const reactor::BaseAction* action : reaction->trigger_actions()) {
      fact.trigger_actions.push_back(action->name());
    }
    for (const reactor::BasePort* port : reaction->dependency_ports()) {
      const std::size_t pi = ensure_port(port);
      facts.ports[pi].readers.push_back(base + i);
      // triggered_by registers on the exact port object the reaction was
      // declared with; reads() does not.
      const auto& triggered = port->triggered_reactions();
      const bool is_trigger =
          std::find(triggered.begin(), triggered.end(), reaction) != triggered.end();
      auto& list = is_trigger ? fact.triggers : fact.reads;
      if (std::find(list.begin(), list.end(), pi) == list.end()) {
        list.push_back(pi);
      }
    }
    for (const reactor::BasePort* port : reaction->effect_ports()) {
      const std::size_t pi = ensure_port(port);
      if (std::find(fact.effects.begin(), fact.effects.end(), pi) == fact.effects.end()) {
        fact.effects.push_back(pi);
      }
    }
    for (const reactor::Reaction* dep : graph.dependencies_of(*reaction)) {
      fact.depends_on.push_back(base + graph.index_of(*dep));
    }
    std::sort(fact.depends_on.begin(), fact.depends_on.end());
    fact.state_reads = reaction->state_reads();
    fact.state_writes = reaction->state_writes();
    facts.reactions.push_back(std::move(fact));
  }

  // Dedupe the adjacency before the SCC pass (a port that both triggers
  // and is read contributes two parallel edges).
  std::vector<std::vector<std::size_t>> adjacency = graph.edges();
  for (auto& row : adjacency) {
    std::sort(row.begin(), row.end());
    row.erase(std::unique(row.begin(), row.end()), row.end());
  }
  for (std::vector<std::size_t>& component : nontrivial_sccs(adjacency)) {
    for (std::size_t& member : component) {
      member += base;
    }
    facts.cycles.push_back(std::move(component));
  }

  facts.level_count = std::max(facts.level_count, analysis.level_count);
}

Facts extract(const std::vector<NodeContext>& nodes) {
  Facts facts;
  for (const NodeContext& node : nodes) {
    extract_node(facts, node);
  }
  return facts;
}

}  // namespace dear::analysis
