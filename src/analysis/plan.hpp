// Compiled schedule plans: the static analyzer's level tables, packaged
// for the runtime.
//
// The scheduler re-derives the acyclic-precedence-graph levels on every
// assemble(); the analyzer already computed them during extraction. A
// StaticPlan snapshots that level assignment per node so a deployment can
// hand it back to the runtime (AppBuilder::apply_schedule_plans →
// Environment::set_schedule_plan → DependencyGraph::apply_plan) and skip
// the topological sort — after the graph validates the plan against the
// live topology, so a stale plan fails loudly instead of silently
// reordering reactions. Consuming a plan is observably identical to
// deriving it: traces and digests stay bit-identical at any worker count.
//
// The plan also carries the shape data the timing rules and reports want:
// per-level widths and a canonical digest that names "the schedule" in
// analysis-report-v1 JSON.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/facts.hpp"

namespace dear::reactor {
struct SchedulePlan;
}

namespace dear::analysis {

struct StaticPlan {
  /// One node's compiled level table: levels[l] lists the reaction fqns
  /// at level l, in extraction (= graph) order.
  struct NodePlan {
    std::string node;
    int level_count{0};
    std::vector<std::vector<std::string>> levels;
  };
  std::vector<NodePlan> nodes;  // node first-appearance order

  [[nodiscard]] bool empty() const noexcept { return nodes.empty(); }
  [[nodiscard]] const NodePlan* find(const std::string& node) const noexcept;

  /// Widest level across all nodes (0 for an empty plan).
  [[nodiscard]] int max_width() const;
  /// histogram[w] = number of (node, level) groups holding exactly w
  /// reactions; index 0 is always 0.
  [[nodiscard]] std::vector<int> width_histogram() const;

  /// Flattens one node's table into the runtime's SchedulePlan form;
  /// throws std::logic_error when the plan has no entry for `node`.
  [[nodiscard]] reactor::SchedulePlan node_plan(const std::string& node) const;

  /// Canonical JSON (same conventions as Facts::to_json).
  [[nodiscard]] std::string to_json(int indent = 0) const;
  /// FNV-1a over to_json(): the stable name of this schedule.
  [[nodiscard]] std::uint64_t digest() const;
};

/// Compiles the per-node level tables out of a fact table. Returns an
/// empty plan when any reaction has no valid level (cyclic graph, or a
/// workload model without a precedence graph).
[[nodiscard]] StaticPlan build_plan(const Facts& facts);

}  // namespace dear::analysis
