#include "analysis/plan.hpp"

#include <algorithm>
#include <stdexcept>

#include "reactor/graph.hpp"

namespace dear::analysis {

const StaticPlan::NodePlan* StaticPlan::find(const std::string& node) const noexcept {
  for (const NodePlan& plan : nodes) {
    if (plan.node == node) {
      return &plan;
    }
  }
  return nullptr;
}

int StaticPlan::max_width() const {
  int widest = 0;
  for (const NodePlan& plan : nodes) {
    for (const auto& level : plan.levels) {
      widest = std::max(widest, static_cast<int>(level.size()));
    }
  }
  return widest;
}

std::vector<int> StaticPlan::width_histogram() const {
  std::vector<int> histogram(static_cast<std::size_t>(max_width()) + 1, 0);
  for (const NodePlan& plan : nodes) {
    for (const auto& level : plan.levels) {
      ++histogram[level.size()];
    }
  }
  return histogram;
}

reactor::SchedulePlan StaticPlan::node_plan(const std::string& node) const {
  const NodePlan* plan = find(node);
  if (plan == nullptr) {
    throw std::logic_error("static plan has no level table for node '" + node + "'");
  }
  reactor::SchedulePlan out;
  out.level_count = plan->level_count;
  for (std::size_t level = 0; level < plan->levels.size(); ++level) {
    for (const std::string& fqn : plan->levels[level]) {
      out.entries.push_back(reactor::SchedulePlan::Entry{fqn, static_cast<int>(level)});
    }
  }
  return out;
}

std::string StaticPlan::to_json(int indent) const {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  std::string out;
  out += pad + "{\n";
  out += pad + "  \"nodes\": [\n";
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const NodePlan& plan = nodes[i];
    out += pad + "    {\"node\": \"" + plan.node +
           "\", \"level_count\": " + std::to_string(plan.level_count) + ", \"levels\": [";
    for (std::size_t level = 0; level < plan.levels.size(); ++level) {
      out += level == 0 ? "[" : ",[";
      for (std::size_t k = 0; k < plan.levels[level].size(); ++k) {
        out += k == 0 ? "\"" : ",\"";
        out += plan.levels[level][k];
        out += '"';
      }
      out += ']';
    }
    out += "]}";
    out += i + 1 < nodes.size() ? ",\n" : "\n";
  }
  out += pad + "  ]\n";
  out += pad + "}";
  return out;
}

std::uint64_t StaticPlan::digest() const { return fnv1a64(to_json()); }

StaticPlan build_plan(const Facts& facts) {
  for (const ReactionFact& reaction : facts.reactions) {
    if (reaction.level < 0) {
      return StaticPlan{};
    }
  }
  StaticPlan plan;
  for (const ReactionFact& reaction : facts.reactions) {
    StaticPlan::NodePlan* node = nullptr;
    for (StaticPlan::NodePlan& candidate : plan.nodes) {
      if (candidate.node == reaction.node) {
        node = &candidate;
        break;
      }
    }
    if (node == nullptr) {
      plan.nodes.push_back(StaticPlan::NodePlan{reaction.node, 0, {}});
      node = &plan.nodes.back();
    }
    const auto level = static_cast<std::size_t>(reaction.level);
    if (node->levels.size() <= level) {
      node->levels.resize(level + 1);
    }
    node->levels[level].push_back(reaction.fqn);
    node->level_count = std::max(node->level_count, reaction.level + 1);
  }
  return plan;
}

}  // namespace dear::analysis
