#include "analysis/report.hpp"

#include <cinttypes>
#include <cstdio>

#include "analysis/rules.hpp"

namespace dear::analysis {

namespace {

[[nodiscard]] std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
        break;
    }
  }
  return out;
}

}  // namespace

std::size_t Report::error_count() const noexcept {
  return count_severity(diagnostics, Severity::kError);
}

std::size_t Report::warning_count() const noexcept {
  return count_severity(diagnostics, Severity::kWarning);
}

std::string Report::to_json(int indent) const {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  std::string out;
  out += pad + "{\n";
  out += pad + "  \"workload\": \"" + json_escape(workload) + "\",\n";
  out += pad + "  \"scenario\": \"" + json_escape(scenario) + "\",\n";
  out += pad + "  \"deterministic\": " + (deterministic() ? "true" : "false") + ",\n";
  out += pad + "  \"expected_deterministic\": " +
         (expected_deterministic ? "true" : "false") + ",\n";
  out += pad + "  \"verdict_matches\": " + (verdict_matches() ? "true" : "false") + ",\n";
  char counts[96];
  std::snprintf(counts, sizeof(counts), "  \"errors\": %zu,\n  \"warnings\": %zu,\n",
                error_count(), warning_count());
  out += pad + counts;
  char digest_line[64];
  std::snprintf(digest_line, sizeof(digest_line), "  \"facts_digest\": \"%016" PRIx64 "\",\n",
                facts.digest());
  out += pad + digest_line;
  out += pad + "  \"diagnostics\": [\n";
  for (std::size_t i = 0; i < diagnostics.size(); ++i) {
    const Diagnostic& d = diagnostics[i];
    out += pad + "    {\"rule\": \"" + std::string(rule_id(d.rule)) + "\", \"severity\": \"" +
           std::string(to_string(d.severity)) + "\", \"subject\": \"" + json_escape(d.subject) +
           "\", \"message\": \"" + json_escape(d.message) + "\"}" +
           (i + 1 < diagnostics.size() ? "," : "") + "\n";
  }
  out += pad + "  ],\n";
  if (timing_evaluated) {
    out += pad + "  \"timing\":\n" + timing.to_json(indent + 2) + ",\n";
    char plan_digest[64];
    std::snprintf(plan_digest, sizeof(plan_digest), "  \"plan_digest\": \"%016" PRIx64 "\",\n",
                  plan.digest());
    out += pad + plan_digest;
    out += pad + "  \"plan\":\n" + plan.to_json(indent + 2) + ",\n";
  }
  out += pad + "  \"facts\":\n" + facts.to_json(indent + 2) + "\n";
  out += pad + "}";
  return out;
}

std::string report_collection_json(const std::vector<Report>& reports) {
  std::size_t errors = 0;
  std::size_t warnings = 0;
  std::size_t mismatches = 0;
  for (const Report& report : reports) {
    errors += report.error_count();
    warnings += report.warning_count();
    if (!report.verdict_matches()) {
      ++mismatches;
    }
  }
  std::string out;
  out += "{\n";
  out += "  \"schema\": \"analysis-report-v1\",\n";
  char summary[160];
  std::snprintf(summary, sizeof(summary),
                "  \"runs\": %zu,\n  \"errors\": %zu,\n  \"warnings\": %zu,\n"
                "  \"oracle_mismatches\": %zu,\n",
                reports.size(), errors, warnings, mismatches);
  out += summary;
  out += "  \"reports\": [\n";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    out += reports[i].to_json(4);
    out += (i + 1 < reports.size() ? ",\n" : "\n");
  }
  out += "  ]\n";
  out += "}\n";
  return out;
}

}  // namespace dear::analysis
