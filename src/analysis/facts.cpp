#include "analysis/facts.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <map>

namespace dear::analysis {

namespace {

#if defined(__GNUC__)
__attribute__((format(printf, 2, 3)))
#endif
void append_format(std::string& out, const char* format, ...) {
  char buffer[512];
  va_list args;
  va_start(args, format);
  const int written = std::vsnprintf(buffer, sizeof(buffer), format, args);
  va_end(args);
  if (written > 0) {
    out.append(buffer, std::min(static_cast<std::size_t>(written), sizeof(buffer) - 1));
  }
}

[[nodiscard]] std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
        break;
    }
  }
  return out;
}

void append_index_list(std::string& out, const std::vector<std::size_t>& values) {
  out += '[';
  for (std::size_t i = 0; i < values.size(); ++i) {
    append_format(out, "%s%zu", i == 0 ? "" : ",", values[i]);
  }
  out += ']';
}

void append_string_list(std::string& out, const std::vector<std::string>& values) {
  out += '[';
  for (std::size_t i = 0; i < values.size(); ++i) {
    append_format(out, "%s\"%s\"", i == 0 ? "" : ",", json_escape(values[i]).c_str());
  }
  out += ']';
}

}  // namespace

std::vector<StateFact> Facts::states() const {
  // std::map: state cells sorted by name so the derived table is
  // independent of declaration order.
  std::map<std::string, StateFact> cells;
  for (std::size_t i = 0; i < reactions.size(); ++i) {
    for (const std::string& name : reactions[i].state_reads) {
      auto& cell = cells[name];
      cell.name = name;
      cell.readers.push_back(i);
    }
    for (const std::string& name : reactions[i].state_writes) {
      auto& cell = cells[name];
      cell.name = name;
      cell.writers.push_back(i);
    }
  }
  std::vector<StateFact> out;
  out.reserve(cells.size());
  for (auto& [name, cell] : cells) {
    out.push_back(std::move(cell));
  }
  return out;
}

std::string Facts::level_table() const {
  // Node order follows first appearance in the reaction table; levels are
  // per-node.
  std::string out;
  std::vector<std::string> node_order;
  for (const ReactionFact& reaction : reactions) {
    if (std::find(node_order.begin(), node_order.end(), reaction.node) == node_order.end()) {
      node_order.push_back(reaction.node);
    }
  }
  for (const std::string& node : node_order) {
    int max_level = -1;
    for (const ReactionFact& reaction : reactions) {
      if (reaction.node == node) {
        max_level = std::max(max_level, reaction.level);
      }
    }
    for (int level = 0; level <= max_level; ++level) {
      std::string line;
      for (const ReactionFact& reaction : reactions) {
        if (reaction.node == node && reaction.level == level) {
          line += ' ';
          line += reaction.fqn;
        }
      }
      if (!line.empty()) {
        append_format(out, "%s/L%d:", node.c_str(), level);
        out += line;
        out += '\n';
      }
    }
  }
  return out;
}

std::string Facts::to_json(int indent) const {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  std::string out;
  out += pad + "{\n";
  append_format(out, "%s  \"workload\": \"%s\",\n", pad.c_str(), json_escape(workload).c_str());
  append_format(out, "%s  \"level_count\": %d,\n", pad.c_str(), level_count);

  out += pad + "  \"reactions\": [\n";
  for (std::size_t i = 0; i < reactions.size(); ++i) {
    const ReactionFact& r = reactions[i];
    append_format(out, "%s    {\"node\": \"%s\", \"fqn\": \"%s\", \"level\": %d, ",
                  pad.c_str(), json_escape(r.node).c_str(), json_escape(r.fqn).c_str(), r.level);
    append_format(out, "\"entry\": %s, \"deadline_ns\": %" PRId64 ", \"wcet_ns\": %" PRId64 ", ",
                  r.entry ? "true" : "false", static_cast<std::int64_t>(r.deadline),
                  static_cast<std::int64_t>(r.wcet));
    out += "\"triggers\": ";
    append_index_list(out, r.triggers);
    out += ", \"reads\": ";
    append_index_list(out, r.reads);
    out += ", \"effects\": ";
    append_index_list(out, r.effects);
    out += ", \"trigger_actions\": ";
    append_string_list(out, r.trigger_actions);
    out += ", \"depends_on\": ";
    append_index_list(out, r.depends_on);
    out += ", \"state_reads\": ";
    append_string_list(out, r.state_reads);
    out += ", \"state_writes\": ";
    append_string_list(out, r.state_writes);
    append_format(out, "}%s\n", i + 1 < reactions.size() ? "," : "");
  }
  out += pad + "  ],\n";

  out += pad + "  \"ports\": [\n";
  for (std::size_t i = 0; i < ports.size(); ++i) {
    const PortFact& p = ports[i];
    append_format(out, "%s    {\"node\": \"%s\", \"fqn\": \"%s\", \"writers\": ", pad.c_str(),
                  json_escape(p.node).c_str(), json_escape(p.fqn).c_str());
    append_index_list(out, p.writers);
    out += ", \"readers\": ";
    append_index_list(out, p.readers);
    append_format(out, "}%s\n", i + 1 < ports.size() ? "," : "");
  }
  out += pad + "  ],\n";

  out += pad + "  \"channels\": [\n";
  for (std::size_t i = 0; i < channels.size(); ++i) {
    const ChannelFact& c = channels[i];
    append_format(out,
                  "%s    {\"member\": \"%s\", \"server\": \"%s\", \"client\": \"%s\", "
                  "\"latency_bound_ns\": %" PRId64 ", \"deadline_ns\": %" PRId64
                  ", \"clock_error_ns\": %" PRId64 ", \"tagged\": %s}%s\n",
                  pad.c_str(), json_escape(c.member).c_str(), json_escape(c.server_node).c_str(),
                  json_escape(c.client_node).c_str(), static_cast<std::int64_t>(c.latency_bound),
                  static_cast<std::int64_t>(c.deadline), static_cast<std::int64_t>(c.clock_error),
                  c.tagged ? "true" : "false", i + 1 < channels.size() ? "," : "");
  }
  out += pad + "  ],\n";

  out += pad + "  \"budgets\": [\n";
  for (std::size_t i = 0; i < budgets.size(); ++i) {
    const BudgetFact& b = budgets[i];
    append_format(out,
                  "%s    {\"member\": \"%s\", \"node\": \"%s\", \"budget_ns\": %" PRId64 "}%s\n",
                  pad.c_str(), json_escape(b.member).c_str(), json_escape(b.node).c_str(),
                  static_cast<std::int64_t>(b.budget), i + 1 < budgets.size() ? "," : "");
  }
  out += pad + "  ],\n";

  out += pad + "  \"states\": [\n";
  const std::vector<StateFact> cells = states();
  for (std::size_t i = 0; i < cells.size(); ++i) {
    append_format(out, "%s    {\"name\": \"%s\", \"readers\": ", pad.c_str(),
                  json_escape(cells[i].name).c_str());
    append_index_list(out, cells[i].readers);
    out += ", \"writers\": ";
    append_index_list(out, cells[i].writers);
    append_format(out, "}%s\n", i + 1 < cells.size() ? "," : "");
  }
  out += pad + "  ],\n";

  out += pad + "  \"cycles\": [\n";
  for (std::size_t i = 0; i < cycles.size(); ++i) {
    out += pad + "    ";
    append_index_list(out, cycles[i]);
    append_format(out, "%s\n", i + 1 < cycles.size() ? "," : "");
  }
  out += pad + "  ],\n";

  out += pad + "  \"level_table\": \"" + json_escape(level_table()) + "\"\n";
  out += pad + "}";
  return out;
}

std::uint64_t Facts::digest() const { return fnv1a64(to_json()); }

std::uint64_t fnv1a64(std::string_view bytes) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace dear::analysis
