// Extraction: reactor topologies → analysis facts.
//
// Works on *constructed* (wired, not necessarily assembled) environments:
// a local DependencyGraph is analyzed without mutating any reaction, so
// extraction is safe to run before AppBuilder::start() and never draws
// from an rng stream — validate() cannot move a determinism digest.
#pragma once

#include <string>
#include <vector>

#include "analysis/facts.hpp"

namespace dear::reactor {
class Environment;
}

namespace dear::analysis {

struct NodeContext {
  std::string name;
  const reactor::Environment* environment{nullptr};
};

/// Appends one node's reactions, ports and cycles to `facts`. Reaction
/// and port indices are global across calls (offset by what is already
/// in the table).
void extract_node(Facts& facts, const NodeContext& node);

/// Extracts every node in order.
[[nodiscard]] Facts extract(const std::vector<NodeContext>& nodes);

}  // namespace dear::analysis
