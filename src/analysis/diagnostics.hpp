// Diagnostics for the static determinism verifier.
//
// Every finding carries a stable rule ID (documented in
// docs/static_analysis.md) so CI gates, golden tests and downstream
// tooling can match on identity rather than message text. Severity
// semantics: an `error` finding means the DEAR determinism guarantee does
// not hold for the analyzed configuration — statically, before a single
// event executes; a `warning` flags a likely specification bug that does
// not break determinism; a `note` records a legal-but-noteworthy
// structure.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace dear::analysis {

enum class Severity : std::uint8_t { kNote, kWarning, kError };

/// The rule catalog. IDs are append-only: new rules get new identifiers,
/// existing identifiers never change meaning.
enum class Rule : std::uint8_t {
  /// DEAR-GRAPH-001: instantaneous causality cycle in the APG.
  kInstantaneousCycle,
  /// DEAR-GRAPH-002: a port with multiple writers that are not totally
  /// ordered by the APG — which writer wins depends on execution order.
  kMultiWriterPort,
  /// DEAR-GRAPH-003: reactions sharing a mutable state cell without an
  /// ordering edge between them.
  kUnorderedSharedState,
  /// DEAR-GRAPH-004: a reaction that no sensor, timer or startup trigger
  /// can ever reach.
  kDeadReaction,
  /// DEAR-GRAPH-005: a multi-writer port whose writers *are* totally
  /// ordered (legal last-write-wins; recorded as a note).
  kOrderedMultiWriterPort,
  /// DEAR-TIME-001: a node whose tightest sending deadline D sits below
  /// the largest modeled execution-time upper bound (WCET) feeding it.
  kDeadlineBelowWcet,
  /// DEAR-TAG-001: a service channel that carries no logical tags, so the
  /// receiver orders messages by physical arrival.
  kUntaggedChannel,
  /// DEAR-ENV-001: scenario service-link latency exceeds the safe-to-
  /// process bound L assumed by the receiving transactors.
  kEnvelopeLatency,
  /// DEAR-ENV-002: scenario drops service messages — the paper's
  /// reliable-delivery assumption is violated.
  kEnvelopeLossyLink,
  /// DEAR-ENV-003: scenario scales deadlines below the values the WCETs
  /// were budgeted against (deadline_scale < 1).
  kEnvelopeDeadlineScale,
  /// DEAR-ENV-004: scenario scales execution times beyond the budgeted
  /// WCETs (exec_time_scale > 1).
  kEnvelopeExecScale,
  /// DEAR-LAT-001: a source→sink chain whose accumulated logical latency
  /// (Σ per-hop D + L + E) exceeds the declared end-to-end budget.
  kChainBudgetExceeded,
  /// DEAR-LAT-002: a chain node whose critical-path WCET exceeds its
  /// tightest sending deadline — deadline misses are statically certain
  /// under the scenario's timing scales.
  kChainWcetExceedsDeadline,
  /// DEAR-LAT-003: a level of the precedence graph wider than the
  /// configured worker count (legal; sequentialized by the scheduler).
  kLevelWidthOverWorkers,
  /// DEAR-LAT-004: an end-to-end budget whose sink no tagged source→sink
  /// chain reaches (unreachable sink / dead budget).
  kUnreachableBudgetSink,
  /// DEAR-FT-001: the scenario injects service faults but configures
  /// neither a retry budget nor (implicitly, via the fault model) a
  /// fallback — failures surface as silent losses.
  kFtNoFallback,
  /// DEAR-FT-002: the retry budget's worst-case added latency (all
  /// attempts time out, every backoff waited) exceeds the tightest
  /// declared end-to-end chain budget.
  kFtRetryBudgetOverChain,
};

/// Every rule, in catalog (= declaration) order. dear_lint --list-rules
/// and the docs-catalog test iterate this.
inline constexpr Rule kAllRules[] = {
    Rule::kInstantaneousCycle,    Rule::kMultiWriterPort,
    Rule::kUnorderedSharedState,  Rule::kDeadReaction,
    Rule::kOrderedMultiWriterPort, Rule::kDeadlineBelowWcet,
    Rule::kUntaggedChannel,       Rule::kEnvelopeLatency,
    Rule::kEnvelopeLossyLink,     Rule::kEnvelopeDeadlineScale,
    Rule::kEnvelopeExecScale,     Rule::kChainBudgetExceeded,
    Rule::kChainWcetExceedsDeadline, Rule::kLevelWidthOverWorkers,
    Rule::kUnreachableBudgetSink,    Rule::kFtNoFallback,
    Rule::kFtRetryBudgetOverChain,
};

[[nodiscard]] std::string_view rule_id(Rule rule) noexcept;
[[nodiscard]] std::string_view rule_summary(Rule rule) noexcept;
[[nodiscard]] Severity rule_severity(Rule rule) noexcept;
[[nodiscard]] std::string_view to_string(Severity severity) noexcept;

struct Diagnostic {
  Rule rule{Rule::kInstantaneousCycle};
  Severity severity{Severity::kError};
  /// What the finding anchors to: a reaction/port fqn, a node name, or a
  /// scenario knob.
  std::string subject;
  std::string message;
};

[[nodiscard]] Diagnostic make_diagnostic(Rule rule, std::string subject, std::string message);

/// Thrown by AppBuilder::validate() when the constructed application
/// contains error-severity findings. Carries the full diagnostic list so
/// callers (and test fixtures) can assert on rule identities.
class AnalysisError : public std::runtime_error {
 public:
  AnalysisError(const std::string& what, std::vector<Diagnostic> diagnostics);

  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const noexcept {
    return diagnostics_;
  }

 private:
  std::vector<Diagnostic> diagnostics_;
};

}  // namespace dear::analysis
