// Declared component model of the stock-APD brake assistant.
//
// The nondet baseline (brake/nondet_pipeline.cpp) is not reactor-based —
// there is no graph to extract — so the analyzer carries a declared model
// mirroring its structure: periodic SWC callbacks, receive handlers, the
// five one-slot input buffers they race on, the shared counters, and the
// untagged SOME/IP channels between the SWCs. The model is judged by the
// exact same rules as the reactor workloads; keeping it in sync with
// nondet_pipeline.cpp is asserted by the analyzer rule tests.
#pragma once

#include "analysis/facts.hpp"

namespace dear::analysis {

[[nodiscard]] Facts nondet_brake_model();

}  // namespace dear::analysis
