#include "analysis/workload_models.hpp"

namespace dear::analysis {

namespace {

struct ModelBuilder {
  Facts facts;

  std::size_t reaction(std::string node, std::string name, std::vector<std::string> reads,
                       std::vector<std::string> writes) {
    ReactionFact fact;
    fact.node = std::move(node);
    fact.fqn = fact.node + "." + name;
    fact.level = -1;  // no precedence graph exists in the stock pipeline
    fact.entry = true;  // periodic callback or asynchronous receive handler
    fact.trigger_actions.push_back(std::move(name));
    fact.state_reads = std::move(reads);
    fact.state_writes = std::move(writes);
    facts.reactions.push_back(std::move(fact));
    return facts.reactions.size() - 1;
  }

  /// A one-slot input buffer: `store` overwrites it from the receive
  /// path, `take` consumes (clears) it from the periodic callback — both
  /// mutate the slot, with no ordering between the two contexts.
  void buffer(const std::string& name, const std::string& node, std::size_t store_reaction,
              std::size_t take_reaction) {
    PortFact port;
    port.fqn = name;
    port.node = node;
    port.writers = {store_reaction, take_reaction};
    port.readers = {take_reaction};
    facts.reactions[store_reaction].effects.push_back(facts.ports.size());
    facts.reactions[take_reaction].triggers.push_back(facts.ports.size());
    facts.ports.push_back(std::move(port));
  }

  void channel(std::string member, std::string server, std::string client) {
    ChannelFact fact;
    fact.member = std::move(member);
    fact.server_node = std::move(server);
    fact.client_node = std::move(client);
    fact.tagged = false;  // stock ara::com events carry no logical tags
    facts.channels.push_back(std::move(fact));
  }
};

}  // namespace

Facts nondet_brake_model() {
  ModelBuilder b;
  b.facts.workload = "nondet";
  b.facts.level_count = 0;

  // Receive handlers (asynchronous, physical arrival order) and periodic
  // callbacks (phase drawn per platform seed), per nondet_pipeline.cpp.
  const auto camera_rx = b.reaction("adapter", "camera_rx", {},
                                    {"latest_frame_id", "errors.dropped_frames_preprocessing"});
  const auto adapter_tick = b.reaction("adapter", "tick", {}, {});
  const auto preproc_rx =
      b.reaction("preproc", "frame_rx", {}, {"errors.dropped_frames_preprocessing"});
  const auto preproc_tick = b.reaction("preproc", "tick", {}, {});
  const auto cv_frame_rx = b.reaction("cv", "frame_rx", {}, {"errors.dropped_frames_cv"});
  const auto cv_lane_rx = b.reaction("cv", "lane_rx", {}, {});
  const auto cv_tick =
      b.reaction("cv", "tick", {}, {"errors.dropped_frames_cv", "errors.input_mismatches_cv"});
  const auto eba_rx = b.reaction("eba", "vehicles_rx", {}, {"errors.dropped_vehicles_eba"});
  const auto eba_tick = b.reaction("eba", "tick", {"latest_frame_id"}, {});

  b.buffer("adapter_buffer", "adapter", camera_rx, adapter_tick);
  b.buffer("preproc_buffer", "preproc", preproc_rx, preproc_tick);
  b.buffer("cv_frame_buffer", "cv", cv_frame_rx, cv_tick);
  b.buffer("cv_lane_buffer", "cv", cv_lane_rx, cv_tick);
  b.buffer("eba_buffer", "eba", eba_rx, eba_tick);

  b.channel("VideoAdapter.frame", "adapter", "preproc");
  b.channel("Preprocessing.lane", "preproc", "cv");
  b.channel("Preprocessing.forwarded_frame", "preproc", "cv");
  b.channel("ComputerVision.vehicles", "cv", "eba");
  b.channel("Eba.brake", "eba", "monitor");

  return b.facts;
}

}  // namespace dear::analysis
