// Extraction over a constructed dear::AppBuilder application: per-node
// reactor facts (extract.hpp) plus the cross-binding service channels
// recovered from the declared transactor bundles.
#pragma once

#include "analysis/facts.hpp"

namespace dear {
class AppBuilder;
}

namespace dear::analysis {

[[nodiscard]] Facts extract_app(const AppBuilder& app);

}  // namespace dear::analysis
