#include "obs/obs_cli.hpp"

#include <cstdio>
#include <fstream>
#include <string>

#include "obs/obs.hpp"

namespace dear::obs {
namespace {

bool write_file(const std::string& path, const std::string& contents, const char* what) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s file %s\n", what, path.c_str());
    return false;
  }
  out << contents;
  std::printf("%s written to %s\n", what, path.c_str());
  return true;
}

}  // namespace

void register_cli_options(common::Cli& cli) {
  cli.add_string("metrics-out", "", "write the metrics-report-v1 snapshot JSON to this file");
  cli.add_string("trace-out", "", "write the Chrome trace-event JSON to this file");
  cli.add_string("trace-categories", "default",
                 "span categories: default | all | none | csv of "
                 "campaign,scenario,level,tag,reaction");
}

bool configure_from_cli(const common::Cli& cli) {
  Registry& registry = Registry::instance();
  if (!cli.get_string("metrics-out").empty()) {
    registry.set_metrics_enabled(true);
  }
  if (!cli.get_string("trace-out").empty()) {
    std::uint32_t mask = kDefaultSpanMask;
    if (!parse_span_mask(cli.get_string("trace-categories"), mask)) {
      std::fprintf(stderr, "unknown --trace-categories '%s'\n",
                   cli.get_string("trace-categories").c_str());
      return false;
    }
    registry.set_span_mask(mask);
  }
  return true;
}

bool export_from_cli(const common::Cli& cli) {
  const std::string metrics_path = cli.get_string("metrics-out");
  const std::string trace_path = cli.get_string("trace-out");
  const Registry& registry = Registry::instance();
  if (!metrics_path.empty() &&
      !write_file(metrics_path, registry.snapshot().to_json(), "metrics report")) {
    return false;
  }
  if (!trace_path.empty() &&
      !write_file(trace_path, registry.chrome_trace_json(), "trace")) {
    return false;
  }
  return true;
}

}  // namespace dear::obs
