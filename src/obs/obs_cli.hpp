// CLI plumbing for the observability layer.
//
// Every example harness exposes the same three options; this helper keeps
// registration, activation, and end-of-run export in one place:
//
//   dear::obs::register_cli_options(cli);
//   if (!cli.parse(argc, argv)) return cli.exit_code();
//   if (!dear::obs::configure_from_cli(cli)) return 1;
//   ... run ...
//   if (!dear::obs::export_from_cli(cli)) return 1;
//
// Passing --metrics-out or --trace-out enables the corresponding
// subsystem for the run; with neither flag the process keeps the
// single-branch disabled path everywhere.
#pragma once

#include "common/cli.hpp"

namespace dear::obs {

/// Adds --metrics-out, --trace-out, and --trace-categories.
void register_cli_options(common::Cli& cli);

/// Enables metrics/tracing according to the parsed flags. Returns false
/// (with a message on stderr) when --trace-categories does not parse.
[[nodiscard]] bool configure_from_cli(const common::Cli& cli);

/// Writes the metrics snapshot / Chrome trace to the requested files.
/// Quiescent-point operation — call after the run completes. Returns
/// false (with a message on stderr) when a file cannot be written.
[[nodiscard]] bool export_from_cli(const common::Cli& cli);

}  // namespace dear::obs
