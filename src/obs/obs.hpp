// Runtime observability: metrics registry and span tracer.
//
// One process-wide Registry holds counters, peak gauges and fixed-bucket
// histograms in per-thread cells behind the same ThreadCacheSlot
// discipline as the allocation pools: an increment on the enabled path is
// a relaxed load + store into the calling thread's own cache line — zero
// atomic RMWs, zero locks, zero allocations in steady state. The disabled
// path is a single relaxed flag load and branch. Snapshots fold the live
// cells, the retired totals of exited threads, and the post-retirement
// fallback cells into one Snapshot with a stable metrics-report-v1 JSON
// serialization.
//
// The span tracer records (logical tag, name, wall-clock start/duration,
// worker ordinal, scheduler level, category) into per-thread ring buffers,
// exported as Chrome trace-event JSON loadable in Perfetto /
// chrome://tracing — one run renders as a worker-lane timeline. Categories
// are individually maskable; the hot per-tag/per-reaction spans are opt-in
// so the default-enabled configuration stays inside the bench-gated
// overhead budget.
//
// Hard contract (bench- and test-enforced): observability never feeds a
// determinism digest — wall-clock data stays in this layer — and enabling
// it changes no logical outcome, only what gets recorded about it.
// Counter/gauge/histogram cells are atomics and safe to snapshot at any
// time; span ring *contents* are owner-thread-private and must only be
// exported at quiescent points (after runs complete / workers joined).
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/interner.hpp"
#include "common/thread_cache.hpp"
#include "obs/histogram.hpp"

namespace dear::obs {

// --- metric catalog -----------------------------------------------------------
//
// Static catalogs: ids are dense enum values indexing fixed per-thread cell
// arrays, so recording needs no name lookup anywhere. `logical` marks
// metrics that are a pure function of the program and its seeds — equal
// across worker counts and repeated runs (asserted by the snapshot merge
// determinism test); wall-clock and scheduling metrics are not.

enum class Counter : std::uint16_t {
  kSchedTagsProcessed,
  kSchedReactionsExecuted,
  kSchedDeadlineViolations,
  kSchedLevelsRun,
  kSchedLevelsParallel,
  kSchedChunkClaims,
  kSchedWorkerParks,
  kSchedWorkerBusyNs,
  kSchedWorkerIdleNs,
  kSimEventsScheduled,
  kSimEventsProcessed,
  kNetPacketsSent,
  kNetPacketsDelivered,
  kNetPacketsDropped,
  kNetPacketsReordered,
  kNetPacketsDuplicated,
  kSomeipMsgsSent,
  kSomeipMsgsReceived,
  kSomeipBytesSent,
  kSomeipBytesReceived,
  kSomeipTaggedSent,
  kSomeipTaggedReceived,
  kSomeipDedupHits,
  kSomeipMalformed,
  kSomeipTimeouts,
  kLocalMsgsSent,
  kLocalMsgsReceived,
  kLocalTaggedSent,
  kLocalTaggedReceived,
  kLocalTimeouts,
  kLocalUndeliverable,
  kPoolSmallShelfLocks,
  kPoolSmallRefills,
  kPoolSmallFlushes,
  kPoolBufferShelfLocks,
  kPoolBufferRefills,
  kPoolBufferFlushes,
  kCampaignScenarios,
  kNetPacketsPartitionDropped,
  kFtCrashDrops,
  kFtCallFaults,
  kFtRetries,
  kFtDegradedTicks,
  kFtFailovers,
  kPoolSlabLoans,
  kPoolSlabShelfHits,
  kPoolSlabAllocs,
  kPoolSlabPublishes,
  kDataplanePayloadCopies,
  kCameraPayloadFrames,
  kCameraPayloadDrops,
  kCount_,
};
inline constexpr std::size_t kCounterCount = static_cast<std::size_t>(Counter::kCount_);

struct CounterDef {
  const char* name;
  bool logical;
};

inline constexpr CounterDef kCounterDefs[kCounterCount] = {
    {"sched.tags_processed", true},
    {"sched.reactions_executed", true},
    {"sched.deadline_violations", true},
    {"sched.levels_run", true},
    {"sched.levels_parallel", false},
    {"sched.chunk_claims", false},
    {"sched.worker_parks", false},
    {"sched.worker_busy_ns", false},
    {"sched.worker_idle_ns", false},
    {"sim.events_scheduled", true},
    {"sim.events_processed", true},
    {"net.packets_sent", true},
    {"net.packets_delivered", true},
    {"net.packets_dropped", true},
    {"net.packets_reordered", true},
    {"net.packets_duplicated", true},
    {"someip.msgs_sent", true},
    {"someip.msgs_received", true},
    {"someip.bytes_sent", true},
    {"someip.bytes_received", true},
    {"someip.tagged_sent", true},
    {"someip.tagged_received", true},
    {"someip.dedup_hits", true},
    {"someip.malformed", true},
    {"someip.timeouts", true},
    {"local.msgs_sent", true},
    {"local.msgs_received", true},
    {"local.tagged_sent", true},
    {"local.tagged_received", true},
    {"local.timeouts", true},
    {"local.undeliverable", true},
    {"pool.small.shelf_locks", false},
    {"pool.small.refills", false},
    {"pool.small.flushes", false},
    {"pool.buffer.shelf_locks", false},
    {"pool.buffer.refills", false},
    {"pool.buffer.flushes", false},
    {"campaign.scenarios", true},
    {"net.packets_partition_dropped", true},
    {"ft.crash_drops", true},
    {"ft.call_faults", true},
    {"ft.retries", true},
    {"ft.degraded_ticks", true},
    {"ft.failovers", true},
    // Loaned-slab data plane. Shelf traffic depends on thread timing
    // (whose release reshelves first), so the pool counters are physical;
    // the camera's frame/drop accounting is part of the deterministic
    // scenario outcome.
    {"pool.slab.loans", false},
    {"pool.slab.shelf_hits", false},
    {"pool.slab.allocs", false},
    {"pool.slab.publishes", false},
    {"dataplane.payload_copies", false},
    {"camera.payload_frames", true},
    {"camera.payload_drops", true},
};

/// Gauges merge by max — peak observations (per thread, then across
/// threads and into the retired totals).
enum class Gauge : std::uint16_t {
  kSchedQueueDepthPeak,
  kSchedLevelWidthPeak,
  kCount_,
};
inline constexpr std::size_t kGaugeCount = static_cast<std::size_t>(Gauge::kCount_);

struct GaugeDef {
  const char* name;
  bool logical;
};

inline constexpr GaugeDef kGaugeDefs[kGaugeCount] = {
    {"sched.queue_depth_peak", true},
    {"sched.level_width_peak", true},
};

/// Uniform fixed-bucket histograms; layouts are part of the catalog so the
/// per-thread cells are flat arrays carved by constexpr offsets.
enum class Hist : std::uint16_t {
  kSchedLevelWidth,
  kCampaignScenarioWallMs,
  kCount_,
};
inline constexpr std::size_t kHistCount = static_cast<std::size_t>(Hist::kCount_);

struct HistDef {
  const char* name;
  double lo;
  double hi;
  std::uint16_t bins;
  bool logical;
};

inline constexpr HistDef kHistDefs[kHistCount] = {
    {"sched.level_width", 0.0, 64.0, 32, true},
    {"campaign.scenario_wall_ms", 0.0, 2000.0, 50, false},
};

/// Slot layout per histogram: [underflow][bins...][overflow].
[[nodiscard]] constexpr std::size_t hist_slot_offset(std::size_t index) noexcept {
  std::size_t offset = 0;
  for (std::size_t i = 0; i < index; ++i) {
    offset += static_cast<std::size_t>(kHistDefs[i].bins) + 2;
  }
  return offset;
}
inline constexpr std::size_t kHistSlotCount = hist_slot_offset(kHistCount);

// --- span categories ----------------------------------------------------------

enum class SpanCategory : std::uint16_t {
  kCampaign,
  kScenario,
  kLevel,
  kTag,
  kReaction,
  kCount_,
};
inline constexpr std::size_t kSpanCategoryCount = static_cast<std::size_t>(SpanCategory::kCount_);

[[nodiscard]] constexpr std::string_view to_string(SpanCategory category) noexcept {
  switch (category) {
    case SpanCategory::kCampaign:
      return "campaign";
    case SpanCategory::kScenario:
      return "scenario";
    case SpanCategory::kLevel:
      return "level";
    case SpanCategory::kTag:
      return "tag";
    case SpanCategory::kReaction:
      return "reaction";
    default:
      return "?";
  }
}

[[nodiscard]] constexpr std::uint32_t category_bit(SpanCategory category) noexcept {
  return std::uint32_t{1} << static_cast<std::uint32_t>(category);
}

/// Default-on categories: coarse spans whose recording cost vanishes next
/// to the work they cover. The per-tag/per-reaction firehose is opt-in —
/// it costs two clock reads per record and would eat the <=5% bench budget
/// on the event-loop hot path.
inline constexpr std::uint32_t kDefaultSpanMask =
    category_bit(SpanCategory::kCampaign) | category_bit(SpanCategory::kScenario) |
    category_bit(SpanCategory::kLevel);
inline constexpr std::uint32_t kAllSpansMask = (std::uint32_t{1} << kSpanCategoryCount) - 1;

/// Parses "scenario,level" / "all" / "default" into a mask; returns false
/// on an unknown category name.
[[nodiscard]] bool parse_span_mask(std::string_view text, std::uint32_t& mask);

/// tag_time value for spans that carry no logical tag.
inline constexpr std::int64_t kSpanNoTag = std::numeric_limits<std::int64_t>::min();

struct Span {
  std::string_view name;  // interned in the owning ring
  std::int64_t start_ns{0};
  std::int64_t duration_ns{0};
  std::int64_t tag_time{kSpanNoTag};
  std::uint32_t tag_microstep{0};
  std::int32_t level{-1};
  std::uint64_t extra{0};  // category-specific (level width, frame count)
  SpanCategory category{SpanCategory::kScenario};
  std::uint32_t worker{0};
};

// --- snapshot -----------------------------------------------------------------

struct ThreadSample {
  std::uint32_t ordinal{0};
  std::array<std::uint64_t, kCounterCount> counters{};
};

struct Snapshot {
  std::array<std::uint64_t, kCounterCount> counters{};
  std::array<std::uint64_t, kGaugeCount> gauges{};
  std::array<std::uint64_t, kHistSlotCount> hist_slots{};
  /// Per-thread counter samples (live threads then retired aggregate),
  /// ordered by ordinal — the per-worker utilization view.
  std::vector<ThreadSample> threads;
  std::uint64_t spans_recorded{0};
  std::uint64_t spans_retained{0};

  [[nodiscard]] std::uint64_t counter(Counter c) const noexcept {
    return counters[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] std::uint64_t gauge(Gauge g) const noexcept {
    return gauges[static_cast<std::size_t>(g)];
  }
  /// Materializes one catalog histogram from the raw slots.
  [[nodiscard]] Histogram histogram(Hist h) const;

  /// Stable metrics-report-v1 JSON (catalog order, threads by ordinal).
  [[nodiscard]] std::string to_json() const;
};

// --- registry -----------------------------------------------------------------

class Registry {
 public:
  /// Spans retained per thread ring (oldest overwritten beyond this).
  static constexpr std::size_t kDefaultRingCapacity = 16 * 1024;

  /// One thread's span ring. `recorded` counts every record (atomic so
  /// snapshots may read it anytime); the span storage itself is owner-
  /// thread-private until a quiescent-point export.
  struct SpanRing {
    SpanRing() = default;
    /// Move is a quiescent-point operation (retiring a drained thread's
    /// ring under the registry mutex), hence the relaxed atomic hand-off.
    SpanRing(SpanRing&& other) noexcept
        : spans(std::move(other.spans)),
          next(other.next),
          recorded(other.recorded.load(std::memory_order_relaxed)),
          names(std::move(other.names)) {}
    std::vector<Span> spans;
    std::size_t next{0};
    std::atomic<std::uint64_t> recorded{0};
    common::Interner names;
  };

  /// Per-thread metric cells + span ring (ThreadCacheSlot owner contract).
  /// Cells are written only by the owning thread (relaxed load + store, no
  /// RMW) and read by snapshots with relaxed loads.
  struct alignas(64) ThreadCache {
    ThreadCache();  // registers with the registry, assigns the ordinal
    std::array<std::atomic<std::uint64_t>, kCounterCount> counters{};
    std::array<std::atomic<std::uint64_t>, kGaugeCount> gauges{};
    std::array<std::atomic<std::uint64_t>, kHistSlotCount> hist_slots{};
    SpanRing ring;
    std::uint32_t ordinal{0};
  };

  static Registry& instance();

  // --- enablement (process-wide flags, relaxed) -------------------------------

  [[nodiscard]] static bool metrics_enabled() noexcept {
    return metrics_enabled_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] static std::uint32_t span_mask() noexcept {
    return span_mask_.load(std::memory_order_relaxed);
  }
  void set_metrics_enabled(bool enabled) noexcept {
    metrics_enabled_.store(enabled, std::memory_order_relaxed);
  }
  /// 0 disables tracing entirely.
  void set_span_mask(std::uint32_t mask) noexcept {
    span_mask_.store(mask, std::memory_order_relaxed);
  }
  /// Applies to rings sized after the call (a ring allocates lazily on its
  /// thread's first span).
  void set_ring_capacity(std::size_t spans) noexcept {
    ring_capacity_.store(spans == 0 ? 1 : spans, std::memory_order_relaxed);
  }
  [[nodiscard]] static std::size_t ring_capacity() noexcept {
    return ring_capacity_.load(std::memory_order_relaxed);
  }

  /// Zeroes every cell (live, retired, fallback) and clears all span
  /// rings. Quiescent-point operation (tests, bench setup).
  void reset();

  // --- reads ------------------------------------------------------------------

  [[nodiscard]] Snapshot snapshot() const;

  /// Sum of one counter over live + retired + fallback cells.
  [[nodiscard]] std::uint64_t counter_total(Counter c) const;

  /// Chrome trace-event JSON over every ring (live + retired), spans
  /// sorted by start time. Quiescent-point operation.
  [[nodiscard]] std::string chrome_trace_json() const;

  /// The calling thread's own counter cells (no lock; flushed teardown
  /// counters from objects destroyed on this thread are included) — the
  /// campaign runner's per-scenario delta source.
  static void read_local_counters(std::array<std::uint64_t, kCounterCount>& out) noexcept;

  /// The calling thread's registry ordinal (creates the cache).
  [[nodiscard]] static std::uint32_t local_ordinal();

  // --- fast-path writers (use the free functions below) -----------------------

  static void add_always(Counter c, std::uint64_t n) noexcept;
  static void gauge_max_always(Gauge g, std::uint64_t value) noexcept;
  static void observe_always(Hist h, double value) noexcept;
  /// Interns `span.name` into the calling thread's ring and records it.
  /// Allocation-free once the ring is sized and the name was seen once.
  static void record_span(Span span);

  // --- ThreadCacheSlot owner contract -----------------------------------------

  static void drain_thread_cache(ThreadCache& cache);

 private:
  friend struct ThreadCache;

  Registry() = default;

  void attach(ThreadCache* cache);

  inline static std::atomic<bool> metrics_enabled_{false};
  inline static std::atomic<std::uint32_t> span_mask_{0};
  inline static std::atomic<std::size_t> ring_capacity_{kDefaultRingCapacity};

  mutable std::mutex mutex_;
  std::vector<ThreadCache*> live_;
  std::uint32_t next_ordinal_{0};
  /// Folded totals of exited threads (guarded by mutex_).
  std::uint64_t retired_counters_[kCounterCount]{};
  std::uint64_t retired_gauges_[kGaugeCount]{};
  std::uint64_t retired_hist_slots_[kHistSlotCount]{};
  std::vector<SpanRing> retired_rings_;
  std::vector<std::uint32_t> retired_ordinals_;
  /// Increments arriving after the thread cache retired (reaper ordering
  /// during thread teardown) — the only cells using atomic RMW.
  std::array<std::atomic<std::uint64_t>, kCounterCount> fallback_counters_{};
};

// --- recording API ------------------------------------------------------------

/// Gated on the metrics flag: the disabled path is one relaxed load + branch.
inline void count(Counter c, std::uint64_t n = 1) noexcept {
  if (Registry::metrics_enabled()) {
    Registry::add_always(c, n);
  }
}

/// Ungated: for promoted always-on counters (pool shelf locks/refills)
/// whose thin-read accessors must count regardless of the metrics flag.
inline void count_always(Counter c, std::uint64_t n = 1) noexcept {
  Registry::add_always(c, n);
}

inline void gauge_max(Gauge g, std::uint64_t value) noexcept {
  if (Registry::metrics_enabled()) {
    Registry::gauge_max_always(g, value);
  }
}

inline void observe(Hist h, double value) noexcept {
  if (Registry::metrics_enabled()) {
    Registry::observe_always(h, value);
  }
}

/// Monotonic wall clock in nanoseconds (steady_clock).
[[nodiscard]] std::int64_t steady_now_ns() noexcept;

/// RAII span: records (start, duration) into the calling thread's ring at
/// destruction when the category is enabled; a masked-off category costs
/// one relaxed load and a branch.
class SpanScope {
 public:
  SpanScope(SpanCategory category, std::string_view name,
            std::int64_t tag_time = kSpanNoTag, std::uint32_t tag_microstep = 0,
            std::int32_t level = -1, std::uint64_t extra = 0) noexcept {
    if ((Registry::span_mask() & category_bit(category)) == 0) {
      return;
    }
    active_ = true;
    span_.name = name;
    span_.category = category;
    span_.tag_time = tag_time;
    span_.tag_microstep = tag_microstep;
    span_.level = level;
    span_.extra = extra;
    span_.start_ns = steady_now_ns();
  }

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  ~SpanScope() {
    if (active_) {
      span_.duration_ns = steady_now_ns() - span_.start_ns;
      Registry::record_span(span_);
    }
  }

  [[nodiscard]] bool active() const noexcept { return active_; }
  void set_extra(std::uint64_t extra) noexcept { span_.extra = extra; }

 private:
  Span span_;
  bool active_{false};
};

}  // namespace dear::obs
