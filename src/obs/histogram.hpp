// Fixed-bucket histogram core.
//
// One implementation of the uniform-bucket math (bucket index, linear
// interpolated quantiles, merge) serving both callers that used to carry
// their own copy: common::BinnedHistogram delegates here, and the metrics
// registry's per-thread bucket cells use the static helpers directly so an
// observe() is an index computation plus one relaxed store, with the
// Histogram object materialized only at snapshot time.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace dear::obs {

class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins)
      : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
    if (bins == 0 || !(hi > lo)) {
      throw std::invalid_argument("Histogram requires bins > 0 and hi > lo");
    }
  }

  /// Bucket for `value` in a uniform [lo, hi) layout: -1 for underflow,
  /// `bins` for overflow, else the bucket index.
  [[nodiscard]] static std::ptrdiff_t bucket_of(double lo, double hi, std::size_t bins,
                                                double value) noexcept {
    if (value < lo) {
      return -1;
    }
    if (value >= hi) {
      return static_cast<std::ptrdiff_t>(bins);
    }
    const auto index =
        static_cast<std::size_t>((value - lo) * static_cast<double>(bins) / (hi - lo));
    return static_cast<std::ptrdiff_t>(std::min(index, bins - 1));
  }

  /// Value below which fraction `q` of the samples fall, interpolated
  /// linearly inside the containing bucket. Shared by Histogram::quantile
  /// and the registry snapshot (which holds raw bucket arrays).
  [[nodiscard]] static double quantile_from(double lo, double hi, const std::uint64_t* counts,
                                            std::size_t bins, std::uint64_t underflow,
                                            std::uint64_t total, double q) noexcept {
    if (total == 0) {
      return lo;
    }
    const double width = (hi - lo) / static_cast<double>(bins);
    const auto target = static_cast<std::uint64_t>(q * static_cast<double>(total));
    std::uint64_t cumulative = underflow;
    if (cumulative > target) {
      return lo;
    }
    for (std::size_t i = 0; i < bins; ++i) {
      if (cumulative + counts[i] > target) {
        const double within =
            counts[i] == 0
                ? 0.0
                : static_cast<double>(target - cumulative) / static_cast<double>(counts[i]);
        return lo + width * (static_cast<double>(i) + within);
      }
      cumulative += counts[i];
    }
    return hi;
  }

  void add(double value, std::uint64_t count = 1) {
    total_ += count;
    const std::ptrdiff_t bucket = bucket_of(lo_, hi_, counts_.size(), value);
    if (bucket < 0) {
      underflow_ += count;
    } else if (static_cast<std::size_t>(bucket) >= counts_.size()) {
      overflow_ += count;
    } else {
      counts_[static_cast<std::size_t>(bucket)] += count;
    }
  }

  /// Adds another histogram with the identical layout.
  void merge(const Histogram& other) {
    if (other.counts_.size() != counts_.size() || other.lo_ != lo_ || other.hi_ != hi_) {
      throw std::invalid_argument("Histogram::merge requires an identical layout");
    }
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      counts_[i] += other.counts_[i];
    }
    underflow_ += other.underflow_;
    overflow_ += other.overflow_;
    total_ += other.total_;
  }

  [[nodiscard]] double lo() const noexcept { return lo_; }
  [[nodiscard]] double hi() const noexcept { return hi_; }
  [[nodiscard]] std::size_t bin_count() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t bin(std::size_t index) const { return counts_.at(index); }
  [[nodiscard]] double bin_lower(std::size_t index) const {
    return lo_ + width_ * static_cast<double>(index);
  }
  [[nodiscard]] double bin_upper(std::size_t index) const {
    return lo_ + width_ * static_cast<double>(index + 1);
  }
  [[nodiscard]] std::uint64_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

  /// quantile in [0, 1].
  [[nodiscard]] double quantile(double q) const noexcept {
    return quantile_from(lo_, hi_, counts_.data(), counts_.size(), underflow_, total_, q);
  }

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_{0};
  std::uint64_t overflow_{0};
  std::uint64_t total_{0};
};

}  // namespace dear::obs
