#include "obs/obs.hpp"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstring>

namespace dear::obs {
namespace {

using Slot = common::ThreadCacheSlot<Registry>;

/// Owner-thread add: relaxed load + store, no RMW (plain add on x86,
/// TSan-clean because the cell has a single writer).
inline void cell_add(std::atomic<std::uint64_t>& cell, std::uint64_t n) noexcept {
  cell.store(cell.load(std::memory_order_relaxed) + n, std::memory_order_relaxed);
}

inline void cell_max(std::atomic<std::uint64_t>& cell, std::uint64_t value) noexcept {
  if (value > cell.load(std::memory_order_relaxed)) {
    cell.store(value, std::memory_order_relaxed);
  }
}

void append_format(std::string& out, const char* format, ...)
    __attribute__((format(printf, 2, 3)));

void append_format(std::string& out, const char* format, ...) {
  char buffer[512];
  va_list args;
  va_start(args, format);
  const int written = std::vsnprintf(buffer, sizeof(buffer), format, args);
  va_end(args);
  if (written > 0) {
    out.append(buffer, std::min(static_cast<std::size_t>(written), sizeof(buffer) - 1));
  }
}

void append_json_escaped(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          append_format(out, "\\u%04x", static_cast<unsigned>(static_cast<unsigned char>(c)));
        } else {
          out += c;
        }
    }
  }
}

/// Trims trailing zeros off a %.6f rendering so JSON numbers stay tidy.
void append_json_double(std::string& out, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6f", value);
  std::size_t len = std::strlen(buffer);
  while (len > 1 && buffer[len - 1] == '0' && buffer[len - 2] != '.') {
    --len;
  }
  out.append(buffer, len);
}

}  // namespace

bool parse_span_mask(std::string_view text, std::uint32_t& mask) {
  if (text.empty() || text == "default") {
    mask = kDefaultSpanMask;
    return true;
  }
  if (text == "all") {
    mask = kAllSpansMask;
    return true;
  }
  if (text == "none") {
    mask = 0;
    return true;
  }
  std::uint32_t parsed = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = std::min(text.find(',', start), text.size());
    const std::string_view item = text.substr(start, comma - start);
    bool matched = false;
    for (std::size_t i = 0; i < kSpanCategoryCount; ++i) {
      const auto category = static_cast<SpanCategory>(i);
      if (item == to_string(category)) {
        parsed |= category_bit(category);
        matched = true;
        break;
      }
    }
    if (!matched && !item.empty()) {
      return false;
    }
    if (comma >= text.size()) {
      break;
    }
    start = comma + 1;
  }
  mask = parsed;
  return true;
}

std::int64_t steady_now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// --- Registry -----------------------------------------------------------------

Registry& Registry::instance() {
  // Leaked singleton, same discipline as the pools: threads may drain
  // their caches during process teardown after static destructors ran.
  static Registry* const registry = new Registry();
  return *registry;
}

Registry::ThreadCache::ThreadCache() { Registry::instance().attach(this); }

void Registry::attach(ThreadCache* cache) {
  const std::lock_guard<std::mutex> guard(mutex_);
  cache->ordinal = next_ordinal_++;
  live_.push_back(cache);
}

void Registry::drain_thread_cache(ThreadCache& cache) {
  Registry& self = instance();
  const std::lock_guard<std::mutex> guard(self.mutex_);
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    self.retired_counters_[i] += cache.counters[i].load(std::memory_order_relaxed);
  }
  for (std::size_t i = 0; i < kGaugeCount; ++i) {
    self.retired_gauges_[i] =
        std::max(self.retired_gauges_[i], cache.gauges[i].load(std::memory_order_relaxed));
  }
  for (std::size_t i = 0; i < kHistSlotCount; ++i) {
    self.retired_hist_slots_[i] += cache.hist_slots[i].load(std::memory_order_relaxed);
  }
  if (cache.ring.recorded.load(std::memory_order_relaxed) != 0) {
    self.retired_rings_.push_back(std::move(cache.ring));
    self.retired_ordinals_.push_back(cache.ordinal);
  }
  self.live_.erase(std::remove(self.live_.begin(), self.live_.end(), &cache), self.live_.end());
  // The ThreadCacheSlot reaper deletes the cache after this returns.
}

void Registry::add_always(Counter c, std::uint64_t n) noexcept {
  if (ThreadCache* cache = Slot::get()) {
    cell_add(cache->counters[static_cast<std::size_t>(c)], n);
  } else {
    // Post-retirement fallback (thread teardown after the reaper ran).
    instance().fallback_counters_[static_cast<std::size_t>(c)].fetch_add(
        n, std::memory_order_relaxed);
  }
}

void Registry::gauge_max_always(Gauge g, std::uint64_t value) noexcept {
  if (ThreadCache* cache = Slot::get()) {
    cell_max(cache->gauges[static_cast<std::size_t>(g)], value);
  }
}

void Registry::observe_always(Hist h, double value) noexcept {
  ThreadCache* cache = Slot::get();
  if (cache == nullptr) {
    return;
  }
  const auto index = static_cast<std::size_t>(h);
  const HistDef& def = kHistDefs[index];
  const std::ptrdiff_t bucket = Histogram::bucket_of(def.lo, def.hi, def.bins, value);
  // Slot layout per histogram: [underflow][bins...][overflow].
  const std::size_t slot = hist_slot_offset(index) + static_cast<std::size_t>(bucket + 1);
  cell_add(cache->hist_slots[slot], 1);
}

void Registry::record_span(Span span) {
  ThreadCache* cache = Slot::get();
  if (cache == nullptr) {
    return;
  }
  SpanRing& ring = cache->ring;
  if (ring.spans.capacity() == 0) {
    ring.spans.reserve(ring_capacity());
  }
  span.name = ring.names.intern(span.name);
  span.worker = cache->ordinal;
  if (ring.spans.size() < ring.spans.capacity()) {
    ring.spans.push_back(span);
  } else {
    ring.spans[ring.next] = span;
    ring.next = (ring.next + 1) % ring.spans.size();
  }
  ring.recorded.store(ring.recorded.load(std::memory_order_relaxed) + 1,
                      std::memory_order_relaxed);
}

void Registry::read_local_counters(std::array<std::uint64_t, kCounterCount>& out) noexcept {
  ThreadCache* cache = Slot::get();
  if (cache == nullptr) {
    out.fill(0);
    return;
  }
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    out[i] = cache->counters[i].load(std::memory_order_relaxed);
  }
}

std::uint32_t Registry::local_ordinal() {
  if (ThreadCache* cache = Slot::get()) {
    return cache->ordinal;
  }
  return 0;
}

std::uint64_t Registry::counter_total(Counter c) const {
  const auto index = static_cast<std::size_t>(c);
  std::uint64_t total = fallback_counters_[index].load(std::memory_order_relaxed);
  const std::lock_guard<std::mutex> guard(mutex_);
  total += retired_counters_[index];
  for (const ThreadCache* cache : live_) {
    total += cache->counters[index].load(std::memory_order_relaxed);
  }
  return total;
}

Snapshot Registry::snapshot() const {
  Snapshot snap;
  const std::lock_guard<std::mutex> guard(mutex_);
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    snap.counters[i] =
        retired_counters_[i] + fallback_counters_[i].load(std::memory_order_relaxed);
  }
  for (std::size_t i = 0; i < kGaugeCount; ++i) {
    snap.gauges[i] = retired_gauges_[i];
  }
  for (std::size_t i = 0; i < kHistSlotCount; ++i) {
    snap.hist_slots[i] = retired_hist_slots_[i];
  }
  bool retired_nonzero = false;
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    retired_nonzero = retired_nonzero || retired_counters_[i] != 0;
  }
  if (retired_nonzero) {
    ThreadSample retired;
    retired.ordinal = std::numeric_limits<std::uint32_t>::max();  // aggregate row
    for (std::size_t i = 0; i < kCounterCount; ++i) {
      retired.counters[i] = retired_counters_[i];
    }
    snap.threads.push_back(retired);
  }
  for (const ThreadCache* cache : live_) {
    ThreadSample sample;
    sample.ordinal = cache->ordinal;
    bool nonzero = false;
    for (std::size_t i = 0; i < kCounterCount; ++i) {
      const std::uint64_t value = cache->counters[i].load(std::memory_order_relaxed);
      sample.counters[i] = value;
      nonzero = nonzero || value != 0;
      snap.counters[i] += value;
    }
    for (std::size_t i = 0; i < kGaugeCount; ++i) {
      snap.gauges[i] =
          std::max(snap.gauges[i], cache->gauges[i].load(std::memory_order_relaxed));
    }
    for (std::size_t i = 0; i < kHistSlotCount; ++i) {
      snap.hist_slots[i] += cache->hist_slots[i].load(std::memory_order_relaxed);
    }
    snap.spans_recorded += cache->ring.recorded.load(std::memory_order_relaxed);
    snap.spans_retained += cache->ring.spans.size();
    if (nonzero) {
      snap.threads.push_back(sample);
    }
  }
  for (const SpanRing& ring : retired_rings_) {
    snap.spans_recorded += ring.recorded.load(std::memory_order_relaxed);
    snap.spans_retained += ring.spans.size();
  }
  std::sort(snap.threads.begin(), snap.threads.end(),
            [](const ThreadSample& a, const ThreadSample& b) { return a.ordinal < b.ordinal; });
  return snap;
}

void Registry::reset() {
  const std::lock_guard<std::mutex> guard(mutex_);
  for (auto& cell : fallback_counters_) {
    cell.store(0, std::memory_order_relaxed);
  }
  std::memset(retired_counters_, 0, sizeof(retired_counters_));
  std::memset(retired_gauges_, 0, sizeof(retired_gauges_));
  std::memset(retired_hist_slots_, 0, sizeof(retired_hist_slots_));
  retired_rings_.clear();
  retired_ordinals_.clear();
  for (ThreadCache* cache : live_) {
    for (auto& cell : cache->counters) {
      cell.store(0, std::memory_order_relaxed);
    }
    for (auto& cell : cache->gauges) {
      cell.store(0, std::memory_order_relaxed);
    }
    for (auto& cell : cache->hist_slots) {
      cell.store(0, std::memory_order_relaxed);
    }
    cache->ring.spans.clear();
    cache->ring.next = 0;
    cache->ring.recorded.store(0, std::memory_order_relaxed);
  }
}

// --- Snapshot -----------------------------------------------------------------

Histogram Snapshot::histogram(Hist h) const {
  const auto index = static_cast<std::size_t>(h);
  const HistDef& def = kHistDefs[index];
  Histogram result(def.lo, def.hi, def.bins);
  const std::size_t base = hist_slot_offset(index);
  for (std::uint64_t i = 0; i < def.bins; ++i) {
    const std::uint64_t count = hist_slots[base + 1 + i];
    if (count != 0) {
      result.add(def.lo + (def.hi - def.lo) * (static_cast<double>(i) + 0.5) /
                     static_cast<double>(def.bins),
                 count);
    }
  }
  if (hist_slots[base] != 0) {
    result.add(def.lo - 1.0, hist_slots[base]);
  }
  if (hist_slots[base + 1 + def.bins] != 0) {
    result.add(def.hi, hist_slots[base + 1 + def.bins]);
  }
  return result;
}

std::string Snapshot::to_json() const {
  std::string out;
  out.reserve(4096);
  out += "{\n  \"schema\": \"metrics-report-v1\",\n  \"counters\": {";
  bool first = true;
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    append_format(out, "%s\n    \"%s\": %" PRIu64, first ? "" : ",", kCounterDefs[i].name,
                  counters[i]);
    first = false;
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (std::size_t i = 0; i < kGaugeCount; ++i) {
    append_format(out, "%s\n    \"%s\": %" PRIu64, first ? "" : ",", kGaugeDefs[i].name,
                  gauges[i]);
    first = false;
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (std::size_t i = 0; i < kHistCount; ++i) {
    const HistDef& def = kHistDefs[i];
    const std::size_t base = hist_slot_offset(i);
    std::uint64_t total = 0;
    for (std::size_t s = 0; s < static_cast<std::size_t>(def.bins) + 2; ++s) {
      total += hist_slots[base + s];
    }
    append_format(out, "%s\n    \"%s\": {\n      \"lo\": ", first ? "" : ",", def.name);
    append_json_double(out, def.lo);
    out += ",\n      \"hi\": ";
    append_json_double(out, def.hi);
    append_format(out, ",\n      \"bins\": %u,\n      \"underflow\": %" PRIu64
                       ",\n      \"overflow\": %" PRIu64 ",\n      \"total\": %" PRIu64
                       ",\n      \"p50\": ",
                  static_cast<unsigned>(def.bins), hist_slots[base],
                  hist_slots[base + 1 + def.bins], total);
    append_json_double(out, Histogram::quantile_from(def.lo, def.hi, &hist_slots[base + 1],
                                                     def.bins, hist_slots[base], total, 0.5));
    out += ",\n      \"p99\": ";
    append_json_double(out, Histogram::quantile_from(def.lo, def.hi, &hist_slots[base + 1],
                                                     def.bins, hist_slots[base], total, 0.99));
    out += ",\n      \"counts\": [";
    for (std::size_t b = 0; b < def.bins; ++b) {
      append_format(out, "%s%" PRIu64, b == 0 ? "" : ", ", hist_slots[base + 1 + b]);
    }
    out += "]\n    }";
    first = false;
  }
  out += "\n  },\n  \"threads\": [";
  first = true;
  for (const ThreadSample& sample : threads) {
    append_format(out, "%s\n    {\n      \"ordinal\": ", first ? "" : ",");
    if (sample.ordinal == std::numeric_limits<std::uint32_t>::max()) {
      out += "\"retired\"";
    } else {
      append_format(out, "%u", sample.ordinal);
    }
    out += ",\n      \"counters\": {";
    bool first_counter = true;
    for (std::size_t i = 0; i < kCounterCount; ++i) {
      if (sample.counters[i] == 0) {
        continue;
      }
      append_format(out, "%s\n        \"%s\": %" PRIu64, first_counter ? "" : ",",
                    kCounterDefs[i].name, sample.counters[i]);
      first_counter = false;
    }
    out += first_counter ? "}" : "\n      }";
    out += "\n    }";
    first = false;
  }
  append_format(out,
                "\n  ],\n  \"spans\": {\n    \"recorded\": %" PRIu64
                ",\n    \"retained\": %" PRIu64 "\n  }\n}\n",
                spans_recorded, spans_retained);
  return out;
}

// --- Chrome trace export ------------------------------------------------------

namespace {

void append_trace_event(std::string& out, const Span& span, std::uint32_t tid, bool& first) {
  append_format(out, "%s\n    {\"name\": \"", first ? "" : ",");
  append_json_escaped(out, span.name);
  append_format(out, "\", \"cat\": \"%s\", \"ph\": \"X\", \"pid\": 0, \"tid\": %u",
                std::string(to_string(span.category)).c_str(), tid);
  // Chrome trace timestamps are microseconds (doubles keep sub-µs detail).
  out += ", \"ts\": ";
  append_json_double(out, static_cast<double>(span.start_ns) / 1000.0);
  out += ", \"dur\": ";
  append_json_double(out, static_cast<double>(span.duration_ns) / 1000.0);
  out += ", \"args\": {";
  bool first_arg = true;
  if (span.tag_time != kSpanNoTag) {
    append_format(out, "\"tag_time\": %" PRId64 ", \"tag_microstep\": %u", span.tag_time,
                  span.tag_microstep);
    first_arg = false;
  }
  if (span.level >= 0) {
    append_format(out, "%s\"level\": %d", first_arg ? "" : ", ", span.level);
    first_arg = false;
  }
  if (span.extra != 0) {
    append_format(out, "%s\"extra\": %" PRIu64, first_arg ? "" : ", ", span.extra);
  }
  out += "}}";
  first = false;
}

void append_ring_events(std::string& out, const Registry::SpanRing& ring, std::uint32_t tid,
                        std::vector<std::pair<std::int64_t, std::string>>& events) {
  // Collect (start, rendered) so the final stream is globally time-sorted.
  for (const Span& span : ring.spans) {
    std::string rendered;
    bool first = true;
    append_trace_event(rendered, span, tid, first);
    events.emplace_back(span.start_ns, std::move(rendered));
  }
  (void)out;
}

}  // namespace

std::string Registry::chrome_trace_json() const {
  std::string out;
  out.reserve(8192);
  out += "{\n  \"traceEvents\": [";
  const std::lock_guard<std::mutex> guard(mutex_);

  std::vector<std::pair<std::int64_t, std::string>> events;
  std::vector<std::uint32_t> tids;
  for (const ThreadCache* cache : live_) {
    if (!cache->ring.spans.empty()) {
      append_ring_events(out, cache->ring, cache->ordinal, events);
      tids.push_back(cache->ordinal);
    }
  }
  for (std::size_t i = 0; i < retired_rings_.size(); ++i) {
    if (!retired_rings_[i].spans.empty()) {
      append_ring_events(out, retired_rings_[i], retired_ordinals_[i], events);
      tids.push_back(retired_ordinals_[i]);
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });

  bool first = true;
  std::sort(tids.begin(), tids.end());
  tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
  for (const std::uint32_t tid : tids) {
    append_format(out,
                  "%s\n    {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": %u, "
                  "\"args\": {\"name\": \"worker-%u\"}}",
                  first ? "" : ",", tid, tid);
    first = false;
  }
  for (const auto& [start, rendered] : events) {
    (void)start;
    out += first ? "\n    " : ",\n    ";
    // rendered begins with the separator-free event object
    out += rendered.substr(rendered.find('{'));
    first = false;
  }
  out += "\n  ],\n  \"displayTimeUnit\": \"ms\"\n}\n";
  return out;
}

}  // namespace dear::obs
