// Reactions.
//
// "Reactors are composed out of reactions that can be triggered by input
// events and may produce output events ... reactions are logically
// instantaneous" (paper §III.A). A reaction declares its triggers (ports,
// actions), reads (dependencies that do not trigger), and effects (ports it
// may write). Reactions of the same reactor are totally ordered by
// declaration; across reactors the acyclic precedence graph assigns levels.
//
// "A deadline D is considered violated when an event with tag t triggers a
// reaction associated with D after physical time T has exceeded t + D."
// When that happens the deadline handler runs *instead of* the body.
#pragma once

#include <functional>
#include <limits>
#include <vector>

#include "common/time.hpp"
#include "reactor/element.hpp"
#include "reactor/tag.hpp"
#include "sim/exec_time_model.hpp"

namespace dear::reactor {

class Reaction final : public Element {
 public:
  using Body = std::function<void()>;

  Reaction(std::string name, int priority, Reactor* container, Body body);

  // --- declaration-time API ---------------------------------------------------

  Reaction& triggered_by(BasePort& port);
  Reaction& triggered_by(BaseAction& action);
  /// Declares a read dependency that does not trigger the reaction.
  Reaction& reads(BasePort& port);
  /// Declares that the body may set `port`.
  Reaction& writes(BasePort& port);
  /// Attaches a deadline; `handler` runs instead of the body on violation.
  Reaction& with_deadline(Duration deadline, Body handler);

  /// Declares that the body reads resp. mutates a named state cell. The
  /// name is a global identity: two reactions declaring the same name
  /// share that state, whether or not they live in the same reactor. The
  /// static verifier (src/analysis/) requires an APG ordering edge between
  /// any two reactions where at least one mutates a shared cell.
  Reaction& reads_state(std::string name);
  Reaction& writes_state(std::string name);

  // --- introspection -----------------------------------------------------------

  [[nodiscard]] int priority() const noexcept { return priority_; }
  [[nodiscard]] int level() const noexcept { return level_; }
  [[nodiscard]] Duration deadline() const noexcept { return deadline_; }
  [[nodiscard]] bool has_deadline() const noexcept { return deadline_ > 0; }

  [[nodiscard]] const std::vector<BasePort*>& dependency_ports() const noexcept {
    return dependencies_;
  }
  [[nodiscard]] const std::vector<BasePort*>& effect_ports() const noexcept { return effects_; }
  [[nodiscard]] const std::vector<BaseAction*>& trigger_actions() const noexcept {
    return action_triggers_;
  }
  [[nodiscard]] const std::vector<std::string>& state_reads() const noexcept {
    return state_reads_;
  }
  [[nodiscard]] const std::vector<std::string>& state_writes() const noexcept {
    return state_writes_;
  }

  [[nodiscard]] std::uint64_t executions() const noexcept { return executions_; }
  [[nodiscard]] std::uint64_t deadline_violations() const noexcept {
    return deadline_violations_;
  }

  /// Modeled execution cost, consumed by the DES driver to advance the
  /// platform's busy time (no effect in threaded execution).
  void set_modeled_cost(sim::ExecTimeModel model) { modeled_cost_ = model; has_cost_ = true; }
  [[nodiscard]] bool has_modeled_cost() const noexcept { return has_cost_; }
  [[nodiscard]] const sim::ExecTimeModel& modeled_cost() const noexcept { return modeled_cost_; }

 private:
  friend class Scheduler;
  friend class DependencyGraph;

  /// Runs the body (or the deadline handler on violation).
  void execute(const Tag& tag, TimePoint physical_now);

  void set_level(int level) noexcept { level_ = level; }

  Body body_;
  int priority_;
  int level_{-1};
  Duration deadline_{0};
  Body deadline_handler_;

  std::vector<BasePort*> dependencies_;  // triggers + reads
  std::vector<BasePort*> effects_;
  std::vector<BaseAction*> action_triggers_;
  std::vector<std::string> state_reads_;
  std::vector<std::string> state_writes_;

  // Scheduler staging state: the tag this reaction is already staged for
  // (guarded by the scheduler's staging mutex).
  Tag staged_for_{Tag::maximum()};

  std::uint64_t executions_{0};
  std::uint64_t deadline_violations_{0};

  sim::ExecTimeModel modeled_cost_{sim::ExecTimeModel::constant(0)};
  bool has_cost_{false};
};

}  // namespace dear::reactor
