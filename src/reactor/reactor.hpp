// Reactor base class.
//
// A reactor is a container for state, ports, actions, reactions and child
// reactors. User reactors subclass this and declare members; all wiring
// happens in the constructor (see examples/quickstart.cpp).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "reactor/action.hpp"
#include "reactor/element.hpp"
#include "reactor/port.hpp"
#include "reactor/reaction.hpp"

namespace dear::reactor {

class Reactor : public Element {
 public:
  /// Top-level reactor, registered with the environment.
  Reactor(std::string name, Environment& environment);
  /// Nested reactor.
  Reactor(std::string name, Reactor* parent);

  /// Declares a reaction. Declaration order defines the total order among
  /// this reactor's reactions (earlier wins at the same tag).
  Reaction& add_reaction(std::string name, Reaction::Body body);

  // --- conveniences available to reaction bodies ------------------------------

  [[nodiscard]] const Tag& current_tag() const;
  /// Logical time of the current tag.
  [[nodiscard]] TimePoint logical_time() const;
  /// Logical time elapsed since startup.
  [[nodiscard]] Duration elapsed_logical_time() const;
  [[nodiscard]] TimePoint physical_time() const;
  void request_shutdown() const;

  // --- hierarchy ----------------------------------------------------------------

  [[nodiscard]] const std::vector<Reactor*>& children() const noexcept { return children_; }
  [[nodiscard]] const std::vector<BasePort*>& ports() const noexcept { return ports_; }
  [[nodiscard]] const std::vector<BaseAction*>& actions() const noexcept { return actions_; }
  [[nodiscard]] const std::vector<std::unique_ptr<Reaction>>& reactions() const noexcept {
    return reactions_;
  }

  // --- registration (called from element constructors) ---------------------------

  void register_port(BasePort* port) { ports_.push_back(port); }
  void register_action(BaseAction* action) { actions_.push_back(action); }
  void register_child(Reactor* child) { children_.push_back(child); }

 private:
  std::vector<Reactor*> children_;
  std::vector<BasePort*> ports_;
  std::vector<BaseAction*> actions_;
  std::vector<std::unique_ptr<Reaction>> reactions_;
};

// --- out-of-line constructors that need the Reactor definition ------------------

template <typename T>
Input<T>::Input(std::string name, Reactor* container)
    : Port<T>(std::move(name), PortDirection::kInput, container, container->environment()) {}

template <typename T>
Output<T>::Output(std::string name, Reactor* container)
    : Port<T>(std::move(name), PortDirection::kOutput, container, container->environment()) {}

template <typename T>
LogicalAction<T>::LogicalAction(std::string name, Reactor* container, Duration min_delay)
    : ValuedAction<T>(std::move(name), container, container->environment(), min_delay) {}

template <typename T>
PhysicalAction<T>::PhysicalAction(std::string name, Reactor* container, Duration min_delay)
    : ValuedAction<T>(std::move(name), container, container->environment(), min_delay) {}

}  // namespace dear::reactor
