// DES execution driver.
//
// Couples one reactor Environment to the simulation kernel: tags are
// processed by kernel callbacks at their physical (= simulation) time, so
// "no events are handled before physical time exceeds their tag" holds by
// construction. Several environments (one per SWC process, as deployed in
// the paper's case study) can share one kernel — this is the co-simulation
// of distributed reactor programs.
//
// Modeled execution cost: reactions tagged with set_modeled_cost consume
// platform time; the driver tracks a busy-until watermark and defers the
// next tag accordingly. Cost inflation beyond a reaction's deadline thus
// surfaces as deadline violations, exactly as computational overload would
// on the real platform.
#pragma once

#include "common/rng.hpp"
#include "reactor/environment.hpp"
#include "sim/kernel.hpp"

namespace dear::reactor {

class SimDriver {
 public:
  SimDriver(Environment& environment, sim::Kernel& kernel, common::Rng cost_rng);
  ~SimDriver();

  SimDriver(const SimDriver&) = delete;
  SimDriver& operator=(const SimDriver&) = delete;

  /// Assembles the environment (if needed) and starts execution at the
  /// current kernel time.
  void start();

  [[nodiscard]] bool finished() const { return environment_.scheduler().finished(); }
  [[nodiscard]] TimePoint busy_until() const noexcept { return busy_until_; }
  [[nodiscard]] Environment& environment() noexcept { return environment_; }

  /// Total modeled execution time consumed so far.
  [[nodiscard]] Duration consumed_cost() const noexcept { return consumed_cost_; }

 private:
  void arm();
  void on_wake();

  Environment& environment_;
  sim::Kernel& kernel_;
  common::Rng cost_rng_;
  TimePoint busy_until_{0};
  Duration consumed_cost_{0};
  sim::EventId armed_event_{0};
  TimePoint armed_time_{kTimeMax};
  bool armed_{false};
  bool started_{false};
};

}  // namespace dear::reactor
