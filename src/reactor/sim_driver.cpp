#include "reactor/sim_driver.hpp"

namespace dear::reactor {

SimDriver::SimDriver(Environment& environment, sim::Kernel& kernel, common::Rng cost_rng)
    : environment_(environment), kernel_(kernel), cost_rng_(cost_rng) {}

SimDriver::~SimDriver() {
  environment_.scheduler().set_wake_callback(nullptr);
  if (armed_) {
    kernel_.cancel(armed_event_);
  }
}

void SimDriver::start() {
  if (started_) {
    return;
  }
  started_ = true;
  environment_.assemble();
  environment_.scheduler().set_wake_callback([this] { arm(); });
  environment_.scheduler().set_exec_cost_hook([this](const Reaction& reaction) -> Duration {
    if (!reaction.has_modeled_cost()) {
      return 0;
    }
    return reaction.modeled_cost().sample(cost_rng_);
  });
  environment_.scheduler().start_at(Tag{kernel_.now(), 0});
  arm();
}

void SimDriver::arm() {
  if (!started_ || finished()) {
    return;
  }
  const Tag next = environment_.scheduler().next_tag();
  if (next == Tag::maximum()) {
    // Idle; a later physical action (via the wake callback) re-arms.
    if (armed_) {
      kernel_.cancel(armed_event_);
      armed_ = false;
      armed_time_ = kTimeMax;
    }
    return;
  }
  const TimePoint target = std::max(next.time, busy_until_);
  if (armed_ && armed_time_ == target) {
    return;
  }
  if (armed_) {
    kernel_.cancel(armed_event_);
  }
  armed_ = true;
  armed_time_ = target;
  armed_event_ = kernel_.schedule_at(target, [this] { on_wake(); });
}

void SimDriver::on_wake() {
  armed_ = false;
  armed_time_ = kTimeMax;
  if (finished()) {
    return;
  }
  // Respect the busy watermark: if modeled cost pushed us past the wake
  // time, try again later.
  if (kernel_.now() < busy_until_) {
    arm();
    return;
  }
  const auto result = environment_.scheduler().process_next_tag(kernel_.now());
  if (result.has_value()) {
    const Duration cost = environment_.scheduler().last_tag_cost();
    if (cost > 0) {
      busy_until_ = std::max(busy_until_, kernel_.now()) + cost;
      consumed_cost_ += cost;
    }
  }
  arm();
}

}  // namespace dear::reactor
