#include "reactor/action.hpp"

#include "reactor/environment.hpp"
#include "reactor/reactor.hpp"

namespace dear::reactor {

BaseAction::BaseAction(std::string name, Reactor* container, Environment& environment,
                       Duration min_delay)
    : Element(std::move(name), container, environment), min_delay_(min_delay) {
  if (container != nullptr) {
    container->register_action(this);
  }
}

Timer::Timer(std::string name, Reactor* container, Duration period, Duration offset)
    : BaseAction(std::move(name), container, container->environment()), period_(period),
      offset_(offset) {
  if (period <= 0) {
    throw std::logic_error("timer period must be positive: " + fqn());
  }
}

void Timer::arm(const Tag& start_tag) {
  // Requires the scheduler lock (called from Scheduler::start_at).
  environment().scheduler().enqueue_locked(this, Tag{start_tag.time + offset_, 0});
}

void Timer::setup(const Tag& tag) {
  BaseAction::setup(tag);
  // Re-arm the next firing (the scheduler lock is held during setup).
  environment().scheduler().enqueue_locked(this, Tag{tag.time + period_, 0});
}

StartupTrigger::StartupTrigger(std::string name, Reactor* container)
    : BaseAction(std::move(name), container, container->environment()) {}

ShutdownTrigger::ShutdownTrigger(std::string name, Reactor* container)
    : BaseAction(std::move(name), container, container->environment()) {}

}  // namespace dear::reactor
