#include "reactor/trace.hpp"

namespace dear::reactor {

std::string Trace::to_string() const {
  std::string out;
  for (const TraceRecord& record : records_) {
    out += record.tag.to_string();
    out += " ";
    out += record.reaction;
    if (record.deadline_violated) {
      out += " [deadline violated]";
    }
    out += "\n";
  }
  return out;
}

}  // namespace dear::reactor
