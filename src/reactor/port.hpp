// Reactor ports and connections.
//
// "Reactors only communicate to one another via channels that connect
// reactor ports" (paper §III.A). A connection binds a source port to a
// sink; values are shared immutable pointers, so fan-out is free. Reading
// follows the inward-binding chain to the source, writing is only allowed
// on unbound (source) ports.
#pragma once

#include <cassert>
#include <stdexcept>
#include <vector>

#include "reactor/element.hpp"
#include "reactor/fwd.hpp"

namespace dear::reactor {

enum class PortDirection : std::uint8_t { kInput, kOutput };

class BasePort : public Element {
 public:
  BasePort(std::string name, PortDirection direction, Reactor* container,
           Environment& environment);

  [[nodiscard]] PortDirection direction() const noexcept { return direction_; }
  [[nodiscard]] bool is_input() const noexcept { return direction_ == PortDirection::kInput; }
  [[nodiscard]] bool is_output() const noexcept { return direction_ == PortDirection::kOutput; }

  /// True when a value was set at the current tag (anywhere along the
  /// binding chain).
  [[nodiscard]] bool is_present() const noexcept { return source().present_; }

  [[nodiscard]] BasePort* inward_binding() const noexcept { return inward_; }
  [[nodiscard]] const std::vector<BasePort*>& outward_bindings() const noexcept {
    return outward_;
  }

  /// Reactions triggered by this port becoming present.
  [[nodiscard]] const std::vector<Reaction*>& triggered_reactions() const noexcept {
    return triggers_;
  }
  /// Reactions that may write this port.
  [[nodiscard]] const std::vector<Reaction*>& writers() const noexcept { return writers_; }

  /// Reactions to stage when this port's *source* becomes present,
  /// including reactions triggered by transitively bound sinks. Cached at
  /// assembly.
  [[nodiscard]] const std::vector<Reaction*>& triggered_closure() const noexcept {
    return closure_;
  }

  // --- assembly-time wiring (used by Environment/Reaction) -------------------

  void bind_to(BasePort* sink);
  void add_trigger(Reaction* reaction) { triggers_.push_back(reaction); }
  void add_writer(Reaction* reaction) { writers_.push_back(reaction); }
  void cache_closure();

 protected:
  [[nodiscard]] const BasePort& source() const noexcept {
    const BasePort* port = this;
    while (port->inward_ != nullptr) {
      port = port->inward_;
    }
    return *port;
  }
  [[nodiscard]] BasePort& source() noexcept {
    return const_cast<BasePort&>(static_cast<const BasePort*>(this)->source());
  }

  /// Marks present and stages triggered reactions; called by Port<T>::set.
  void signal_presence();

  bool present_{false};

 protected:
  friend class Scheduler;
  virtual void cleanup() noexcept { present_ = false; }

 private:
  PortDirection direction_;
  BasePort* inward_{nullptr};
  std::vector<BasePort*> outward_;
  std::vector<Reaction*> triggers_;
  std::vector<Reaction*> writers_;
  std::vector<Reaction*> closure_;
};

template <typename T>
class Port : public BasePort {
 public:
  using BasePort::BasePort;

  /// Writes a value at the current tag. Only valid during reaction
  /// execution, on ports without an inward binding.
  void set(ImmutableValuePtr<T> value) {
    if (inward_binding() != nullptr) {
      throw std::logic_error("cannot set a port with an inward binding: " + fqn());
    }
    assert(value != nullptr);
    value_ = std::move(value);
    signal_presence();
  }

  void set(const T& value) { set(make_immutable_value<T>(value)); }
  void set(T&& value) { set(make_immutable_value<T>(std::move(value))); }

  /// For Port<Empty> style pure signals.
  void set() requires std::same_as<T, Empty> { set(Empty{}); }

  /// Reads the value at the current tag; requires is_present().
  [[nodiscard]] const T& get() const {
    const auto& src = static_cast<const Port<T>&>(source());
    assert(src.value_ != nullptr && "get() on absent port");
    return *src.value_;
  }

  /// Shared pointer to the current value (null when absent).
  [[nodiscard]] ImmutableValuePtr<T> get_ptr() const {
    return static_cast<const Port<T>&>(source()).value_;
  }

 protected:
  void cleanup() noexcept override {
    BasePort::cleanup();
    value_.reset();
  }

 private:
  ImmutableValuePtr<T> value_;
};

template <typename T>
class Input final : public Port<T> {
 public:
  Input(std::string name, Reactor* container);
};

template <typename T>
class Output final : public Port<T> {
 public:
  Output(std::string name, Reactor* container);
};

}  // namespace dear::reactor
