#include "reactor/reaction.hpp"

#include "reactor/action.hpp"
#include "reactor/port.hpp"
#include "reactor/reactor.hpp"

namespace dear::reactor {

Reaction::Reaction(std::string name, int priority, Reactor* container, Body body)
    : Element(std::move(name), container, container->environment()), body_(std::move(body)),
      priority_(priority) {}

Reaction& Reaction::triggered_by(BasePort& port) {
  port.add_trigger(this);
  dependencies_.push_back(&port);
  return *this;
}

Reaction& Reaction::triggered_by(BaseAction& action) {
  action.add_trigger(this);
  action_triggers_.push_back(&action);
  return *this;
}

Reaction& Reaction::reads(BasePort& port) {
  dependencies_.push_back(&port);
  return *this;
}

Reaction& Reaction::writes(BasePort& port) {
  port.add_writer(this);
  effects_.push_back(&port);
  return *this;
}

Reaction& Reaction::with_deadline(Duration deadline, Body handler) {
  deadline_ = deadline;
  deadline_handler_ = std::move(handler);
  return *this;
}

Reaction& Reaction::reads_state(std::string name) {
  state_reads_.push_back(std::move(name));
  return *this;
}

Reaction& Reaction::writes_state(std::string name) {
  state_writes_.push_back(std::move(name));
  return *this;
}

void Reaction::execute(const Tag& tag, TimePoint physical_now) {
  ++executions_;
  if (has_deadline() && physical_now > tag.time + deadline_) {
    ++deadline_violations_;
    if (deadline_handler_) {
      deadline_handler_();
    }
    return;  // the deadline handler replaces the body
  }
  body_();
}

}  // namespace dear::reactor
