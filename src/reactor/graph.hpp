// Acyclic precedence graph (APG).
//
// "The communication topology of a reactor program translates into an
// acyclic precedence graph that drives the execution" (paper §III.A).
// Edges:
//   * a reaction that may write a port precedes every reaction that is
//     triggered by or reads that port (following connections transitively),
//   * within one reactor, reactions are ordered by declaration priority.
// A topological sort assigns each reaction a level; reactions on the same
// level are independent and may execute in parallel. Cycles are reported
// with the full path.
//
// Beyond driving execution, the graph is introspectable: analyze() exposes
// the adjacency, per-reaction levels, writer sets and dependency sets that
// the static verifier (src/analysis/) and the future static-schedule
// specialization consume — without executing a single event.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "reactor/fwd.hpp"

namespace dear::reactor {

/// A compiled level assignment for one reactor environment: the product of
/// a topological sort, detached from the graph that produced it. Produced
/// by DependencyGraph::export_plan() (or the static analyzer's StaticPlan,
/// analysis/plan.hpp) and consumed by DependencyGraph::apply_plan(), which
/// validates it against the live topology before trusting it.
struct SchedulePlan {
  struct Entry {
    std::string fqn;
    int level{0};
  };
  std::vector<Entry> entries;
  int level_count{0};
};

class DependencyGraph {
 public:
  /// Outcome of the non-throwing level analysis. When the graph is cyclic,
  /// `cyclic` lists the indices (into reactions()) of every reaction stuck
  /// on an instantaneous cycle; levels of acyclic reactions stay valid.
  struct LevelAnalysis {
    bool acyclic{true};
    int level_count{0};
    std::vector<std::size_t> cyclic;
  };

  /// Collects all reactions reachable from the given top-level reactors.
  explicit DependencyGraph(const std::vector<Reactor*>& top_level);

  /// Computes levels without mutating the reactions and without throwing;
  /// idempotent (cached). The entry point for static analysis, which wants
  /// cycles as diagnostics rather than exceptions.
  const LevelAnalysis& analyze();

  /// Assigns levels onto the reactions; throws std::logic_error naming the
  /// cycle if the graph is cyclic. Returns the number of levels.
  int assign_levels();

  /// Snapshots the level assignment as a detached plan (fqn → level, in
  /// graph order). Requires a prior successful assign_levels()/analyze()
  /// on an acyclic graph; throws std::logic_error otherwise.
  [[nodiscard]] SchedulePlan export_plan();

  /// Installs a precomputed plan instead of running the topological sort:
  /// validates that the plan covers exactly this graph's reactions (by
  /// fqn), that every edge is level-monotone (level[i] < level[j] for each
  /// edge i→j) and that levels are in range, then assigns the levels onto
  /// the reactions. Throws std::logic_error naming the first mismatch when
  /// the plan is stale. Returns the number of levels (min 1), like
  /// assign_levels().
  int apply_plan(const SchedulePlan& plan);

  [[nodiscard]] const std::vector<Reaction*>& reactions() const noexcept { return reactions_; }
  [[nodiscard]] int level_count() const noexcept { return level_count_; }

  // --- const introspection (valid after analyze()/assign_levels()) -----------

  /// Adjacency: edges()[i] lists indices of reactions that must run after
  /// reaction i. May contain duplicates (a port that both triggers and is
  /// read contributes one edge each).
  [[nodiscard]] const std::vector<std::vector<std::size_t>>& edges() const noexcept {
    return edges_;
  }

  /// Level computed for reactions()[index] (0-based; meaningless for
  /// reactions listed in LevelAnalysis::cyclic).
  [[nodiscard]] int level_of(std::size_t index) const { return level_.at(index); }

  /// Reactions grouped by level: levels()[l] lists every reaction at level
  /// l, in graph order. Reactions on a cycle appear in no group.
  [[nodiscard]] const std::vector<std::vector<Reaction*>>& levels() const noexcept {
    return by_level_;
  }

  /// Reactions that may write `port`, resolved through the binding chain
  /// to the source port (writers always register on the source).
  [[nodiscard]] static const std::vector<Reaction*>& writers_of(const BasePort& port) noexcept;

  /// Direct predecessors of `reaction` in the APG (deduplicated): every
  /// reaction that must run before it at the same tag.
  [[nodiscard]] std::vector<const Reaction*> dependencies_of(const Reaction& reaction) const;

  /// Index of `reaction` in reactions(), or reactions().size() when the
  /// reaction is not part of this graph.
  [[nodiscard]] std::size_t index_of(const Reaction& reaction) const noexcept;

 private:
  void collect(Reactor* reactor);
  void build_edges();

  std::vector<Reactor*> all_reactors_;
  std::vector<Reaction*> reactions_;
  // adjacency: edges_[i] lists indices of reactions that must run after i.
  std::vector<std::vector<std::size_t>> edges_;
  std::vector<int> level_;
  std::vector<std::vector<Reaction*>> by_level_;
  LevelAnalysis analysis_;
  bool analyzed_{false};
  int level_count_{0};
};

}  // namespace dear::reactor
