// Acyclic precedence graph (APG).
//
// "The communication topology of a reactor program translates into an
// acyclic precedence graph that drives the execution" (paper §III.A).
// Edges:
//   * a reaction that may write a port precedes every reaction that is
//     triggered by or reads that port (following connections transitively),
//   * within one reactor, reactions are ordered by declaration priority.
// A topological sort assigns each reaction a level; reactions on the same
// level are independent and may execute in parallel. Cycles are reported
// with the full path.
#pragma once

#include <string>
#include <vector>

#include "reactor/fwd.hpp"

namespace dear::reactor {

class DependencyGraph {
 public:
  /// Collects all reactions reachable from the given top-level reactors.
  explicit DependencyGraph(const std::vector<Reactor*>& top_level);

  /// Assigns levels; throws std::logic_error naming the cycle if the graph
  /// is cyclic. Returns the number of levels.
  int assign_levels();

  [[nodiscard]] const std::vector<Reaction*>& reactions() const noexcept { return reactions_; }
  [[nodiscard]] int level_count() const noexcept { return level_count_; }

 private:
  void collect(Reactor* reactor);
  void build_edges();

  std::vector<Reactor*> all_reactors_;
  std::vector<Reaction*> reactions_;
  // adjacency: edges_[i] lists indices of reactions that must run after i.
  std::vector<std::vector<std::size_t>> edges_;
  int level_count_{0};
};

}  // namespace dear::reactor
