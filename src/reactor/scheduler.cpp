#include "reactor/scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <stdexcept>

#include "obs/obs.hpp"
#include "reactor/action.hpp"
#include "reactor/environment.hpp"
#include "reactor/port.hpp"

namespace dear::reactor {

namespace {

inline void cpu_pause() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#endif
}

/// Spins before a worker parks resp. the orchestrator starts yielding:
/// long enough to bridge the gap between consecutive levels of a busy
/// stream, short enough not to burn a timeslice on a small host.
constexpr int kSpinsBeforePark = 2048;
/// Parked workers re-probe for work on this period instead of relying on
/// a publisher wakeup — publishing a level is then syscall-free, and an
/// orchestrator on a 1-core host never pays futex wakes for workers that
/// cannot help anyway.
constexpr std::chrono::milliseconds kParkPoll{1};
/// Level width from which publishing additionally notifies parked workers:
/// for wide batches the wakeup latency is worth the syscall.
constexpr std::uint32_t kParkedNotifyFloor = 32;

}  // namespace

thread_local Scheduler::WorkerSlot* Scheduler::active_slot_ = nullptr;
thread_local std::uint32_t Scheduler::active_batch_index_ = 0;

Scheduler::Scheduler(Environment& environment, PhysicalClock& clock)
    : environment_(environment), clock_(clock),
      worker_slots_(std::make_unique<WorkerSlot[]>(1)) {}

Scheduler::~Scheduler() {
  pool_shutdown_.store(true, std::memory_order_seq_cst);
  { const std::lock_guard<std::mutex> lock(park_mutex_); }
  park_cv_.notify_all();
  for (auto& thread : worker_threads_) {
    thread.join();
  }
  // Lifetime totals flush into the metrics registry after the workers have
  // joined (their slot counters are stable), so the tag loop keeps its
  // plain member counters.
  obs::count(obs::Counter::kSchedTagsProcessed, tags_processed_);
  obs::count(obs::Counter::kSchedReactionsExecuted, reactions_executed());
  obs::count(obs::Counter::kSchedDeadlineViolations,
             deadline_violations_.load(std::memory_order_relaxed));
}

void Scheduler::configure(int level_count, unsigned workers, bool keepalive, Duration timeout) {
  staged_.resize(static_cast<std::size_t>(level_count));
  workers_ = workers == 0 ? 1 : workers;
  keepalive_ = keepalive;
  timeout_ = timeout;
  // Slot 0 is the orchestrating thread; 1..workers-1 the pool workers.
  worker_slot_count_ = workers_;
  worker_slots_ = std::make_unique<WorkerSlot[]>(worker_slot_count_);
}

void Scheduler::enqueue_locked(BaseAction* action, const Tag& tag) {
  assert(state_ != State::kFinished);
  if (event_queue_.insert(action, tag)) {
    wake_pending_.store(true, std::memory_order_release);
  }
}

void Scheduler::enqueue_batch_locked(BaseAction* const* actions, std::size_t count,
                                     const Tag& tag) {
  assert(state_ != State::kFinished);
  const bool was_earliest = event_queue_.empty() || tag < event_queue_.earliest();
  event_queue_.insert_batch(actions, count, tag);
  if (was_earliest && count > 0) {
    wake_pending_.store(true, std::memory_order_release);
  }
}

void Scheduler::set_current_tag_locked(const Tag& tag) noexcept {
  current_tag_ = tag;
  // Seqlock write: odd sequence marks the snapshot in flux, the release
  // fence orders the field stores before the closing (even) increment.
  tag_seq_.fetch_add(1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  published_tag_time_.store(tag.time, std::memory_order_relaxed);
  published_tag_microstep_.store(tag.microstep, std::memory_order_relaxed);
  tag_seq_.fetch_add(1, std::memory_order_release);
}

void Scheduler::notify() {
  cv_.notify_all();
  bool expected = true;
  if (wake_pending_.compare_exchange_strong(expected, false) && wake_callback_) {
    wake_callback_();
  }
}

void Scheduler::request_stop() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (state_ == State::kFinished) {
      return;
    }
    stop_requested_ = true;
    const Tag earliest_stop = current_tag_.delay(0);
    if (earliest_stop < stop_tag_) {
      stop_tag_ = earliest_stop;
    }
    wake_pending_.store(true, std::memory_order_release);
  }
  notify();
}

void Scheduler::start_at(const Tag& start_tag) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (state_ != State::kIdle) {
    throw std::logic_error("scheduler already started");
  }
  state_ = State::kRunning;
  start_tag_ = start_tag;
  set_current_tag_locked(start_tag);
  if (timeout_ >= 0) {
    stop_tag_ = Tag{start_tag.time + timeout_, 0};
  }
  enqueue_batch_locked(startup_actions_.data(), startup_actions_.size(), start_tag);
  for (Timer* timer : timers_) {
    timer->arm(start_tag);
  }
}

Tag Scheduler::next_tag() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (state_ != State::kRunning) {
    return Tag::maximum();
  }
  Tag next = event_queue_.earliest();
  if (stop_tag_ < next) {
    next = stop_tag_;
  }
  return next;
}

void Scheduler::prepare_tag_locked(const Tag& tag, bool is_stop) {
  assert(tag >= current_tag_);
  set_current_tag_locked(tag);
  ++tags_processed_;
  busy_offset_ = 0;
  if (obs::Registry::metrics_enabled()) {
    obs::gauge_max(obs::Gauge::kSchedQueueDepthPeak, event_queue_.pending_events());
  }

  const std::lock_guard<std::mutex> staging_lock(staging_mutex_);
  if (event_queue_.pop_at(tag, popped_actions_)) {
    for (BaseAction* action : popped_actions_) {
      action->setup(tag);  // Timer::setup re-arms via enqueue_locked
      active_actions_.push_back(action);
      for (Reaction* reaction : action->triggered_reactions()) {
        stage_locked(*reaction);
      }
    }
  }
  if (is_stop) {
    for (BaseAction* action : shutdown_actions_) {
      action->setup(tag);
      active_actions_.push_back(action);
      for (Reaction* reaction : action->triggered_reactions()) {
        stage_locked(*reaction);
      }
    }
  }
}

void Scheduler::stage_locked(Reaction& reaction) {
  if (reaction.staged_for_ == current_tag_) {
    return;  // already staged at this tag
  }
  reaction.staged_for_ = current_tag_;
  assert(reaction.level() >= 0);
  assert(static_cast<std::size_t>(reaction.level()) < staged_.size());
  staged_[static_cast<std::size_t>(reaction.level())].push_back(&reaction);
}

void Scheduler::stage_port_triggers(BasePort& port) {
  if (WorkerSlot* slot = active_slot_) {
    // Parallel level in flight on this thread: record privately, merge in
    // deterministic batch-index order at the level barrier.
    slot->records.push_back(StagedRecord{active_batch_index_, false, &port});
    return;
  }
  const std::lock_guard<std::mutex> lock(staging_mutex_);
  assert(port.triggered_closure().empty() ||
         port.triggered_closure().front()->level() > current_level_);
  for (Reaction* reaction : port.triggered_closure()) {
    stage_locked(*reaction);
  }
}

void Scheduler::register_set_port(BasePort& port) {
  if (WorkerSlot* slot = active_slot_) {
    slot->records.push_back(StagedRecord{active_batch_index_, true, &port});
    return;
  }
  const std::lock_guard<std::mutex> lock(staging_mutex_);
  set_ports_.push_back(&port);
}

void Scheduler::execute_reaction(Reaction& reaction) {
  // busy_offset_ models execution time already consumed at this tag (DES
  // driver only; zero in threaded mode).
  const TimePoint physical_now = clock_.now() + busy_offset_;
  const bool violated =
      reaction.has_deadline() && physical_now > current_tag_.time + reaction.deadline();
  if (violated) {
    deadline_violations_.fetch_add(1, std::memory_order_relaxed);
  }
  if (trace_.enabled()) {
    const std::lock_guard<std::mutex> lock(staging_mutex_);
    trace_.record(current_tag_, reaction.fqn(), violated);
  }
  {
    const obs::SpanScope span(obs::SpanCategory::kReaction, reaction.fqn(), current_tag_.time,
                              current_tag_.microstep,
                              static_cast<std::int32_t>(reaction.level()));
    reaction.execute(current_tag_, physical_now);
  }
  worker_slots_[0].reactions_executed.fetch_add(1, std::memory_order_relaxed);
  if (exec_cost_hook_) {
    busy_offset_ += exec_cost_hook_(reaction);
  }
}

void Scheduler::execute_reaction_parallel(Reaction& reaction, WorkerSlot& slot,
                                          std::uint32_t batch_index) {
  // current_tag_ is stable for the whole level (the publish of the level
  // cursor ordered the tag write before any claim).
  active_batch_index_ = batch_index;
  const TimePoint physical_now = clock_.now();
  const bool violated =
      reaction.has_deadline() && physical_now > current_tag_.time + reaction.deadline();
  if (violated) {
    deadline_violations_.fetch_add(1, std::memory_order_relaxed);
  }
  if (trace_.enabled()) {
    slot.trace.push_back(LocalTraceRecord{batch_index, violated});
  }
  {
    const obs::SpanScope span(obs::SpanCategory::kReaction, reaction.fqn(), current_tag_.time,
                              current_tag_.microstep,
                              static_cast<std::int32_t>(reaction.level()));
    reaction.execute(current_tag_, physical_now);
  }
  slot.reactions_executed.fetch_add(1, std::memory_order_relaxed);
}

void Scheduler::execute_staged() {
  // Opt-in firehose category: masked off by default, one branch here.
  const obs::SpanScope tag_span(obs::SpanCategory::kTag, "tag", current_tag_.time,
                                current_tag_.microstep);
  for (std::size_t level = 0; level < staged_.size(); ++level) {
    // Swap with the reused batch buffer: the two vectors' capacities
    // rotate, so no level allocates in steady state.
    level_batch_buffer_.clear();
    {
      const std::lock_guard<std::mutex> lock(staging_mutex_);
      current_level_ = static_cast<int>(level);
      level_batch_buffer_.swap(staged_[level]);
    }
    if (level_batch_buffer_.empty()) {
      continue;
    }
    if (obs::Registry::metrics_enabled()) {
      const auto width = static_cast<std::uint64_t>(level_batch_buffer_.size());
      obs::count(obs::Counter::kSchedLevelsRun);
      obs::observe(obs::Hist::kSchedLevelWidth, static_cast<double>(width));
      obs::gauge_max(obs::Gauge::kSchedLevelWidthPeak, width);
    }
    // Serial fast path: single worker, single reaction, or modeled
    // execution cost (sequential by definition — the DES driver).
    if (workers_ <= 1 || level_batch_buffer_.size() == 1 || exec_cost_hook_ ||
        level_batch_buffer_.size() > kMaxLevelWidth) {
      for (Reaction* reaction : level_batch_buffer_) {
        execute_reaction(*reaction);
      }
    } else {
      obs::count(obs::Counter::kSchedLevelsParallel);
      const obs::SpanScope span(obs::SpanCategory::kLevel, "level", current_tag_.time,
                                current_tag_.microstep, static_cast<std::int32_t>(level),
                                level_batch_buffer_.size());
      run_level_parallel(level_batch_buffer_);
    }
    executed_buffer_.insert(executed_buffer_.end(), level_batch_buffer_.begin(),
                            level_batch_buffer_.end());
  }
  {
    const std::lock_guard<std::mutex> lock(staging_mutex_);
    current_level_ = -1;
  }
}

void Scheduler::run_level_parallel(const std::vector<Reaction*>& level_reactions) {
  const auto size = static_cast<std::uint32_t>(level_reactions.size());
  // Chunked claims amortize the cursor CAS; / 4 keeps the tail balanced
  // when reaction costs are skewed.
  const std::uint32_t chunk =
      std::max<std::uint32_t>(1, size / (static_cast<std::uint32_t>(workers_) * 4));
  level_completed_.store(0, std::memory_order_relaxed);
  level_batch_.store(level_reactions.data(), std::memory_order_relaxed);
  level_size_.store(size, std::memory_order_relaxed);
  level_chunk_.store(chunk, std::memory_order_relaxed);
  // Truncate to the cursor's 40 generation bits on the publish side too,
  // so the orchestrator's equality checks in work_on_level keep matching
  // after the counter wraps.
  const std::uint64_t generation = ++level_generation_ & kGenMask;
  // seq_cst publish: orders the store against the parked_workers_ read
  // below, closing the park/publish race without a lock.
  level_cursor_.store(generation << kGenShift, std::memory_order_seq_cst);
  if (size >= kParkedNotifyFloor && parked_workers_.load(std::memory_order_seq_cst) > 0) {
    { const std::lock_guard<std::mutex> lock(park_mutex_); }
    park_cv_.notify_all();
  }

  // The orchestrating thread claims chunks too.
  work_on_level(generation, worker_slots_[0]);

  // Completion barrier: wait for every *claimed* reaction, never for idle
  // workers — a parked worker that claimed nothing costs nothing here.
  int spins = 0;
  while (level_completed_.load(std::memory_order_acquire) != size) {
    if (++spins >= kSpinsBeforePark) {
      std::this_thread::yield();  // claimant likely descheduled (small host)
      spins = 0;
    } else {
      cpu_pause();
    }
  }
  merge_level_effects(level_reactions);
}

void Scheduler::work_on_level(std::uint64_t generation, WorkerSlot& slot) {
  WorkerSlot* const previous_slot = active_slot_;
  active_slot_ = &slot;
  for (;;) {
    std::uint64_t cursor = level_cursor_.load(std::memory_order_acquire);
    if ((cursor >> kGenShift) != generation) {
      break;  // level finished and superseded while we were away
    }
    const std::uint32_t size = level_size_.load(std::memory_order_relaxed);
    const std::uint32_t chunk = level_chunk_.load(std::memory_order_relaxed);
    const auto index = static_cast<std::uint32_t>(cursor & kIndexMask);
    if (index >= size) {
      break;  // every reaction claimed
    }
    const std::uint32_t next = std::min(index + chunk, size);
    if (!level_cursor_.compare_exchange_weak(cursor, (generation << kGenShift) | next,
                                             std::memory_order_acq_rel,
                                             std::memory_order_relaxed)) {
      continue;  // lost the race (or the level changed) — re-evaluate
    }
    // The successful CAS proves the level was current and incomplete, so
    // the published batch pointer cannot have been republished since.
    Reaction* const* batch = level_batch_.load(std::memory_order_relaxed);
    const bool timed = obs::Registry::metrics_enabled();
    const std::int64_t claim_start = timed ? obs::steady_now_ns() : 0;
    for (std::uint32_t i = index; i < next; ++i) {
      execute_reaction_parallel(*batch[i], slot, i);
    }
    if (timed) {
      obs::count(obs::Counter::kSchedChunkClaims);
      obs::count(obs::Counter::kSchedWorkerBusyNs,
                 static_cast<std::uint64_t>(obs::steady_now_ns() - claim_start));
    }
    level_completed_.fetch_add(next - index, std::memory_order_acq_rel);
  }
  active_slot_ = previous_slot;
}

void Scheduler::worker_loop(std::size_t worker_index) {
  WorkerSlot& slot = worker_slots_[worker_index];
  std::uint64_t seen_generation = 0;
  for (;;) {
    std::uint64_t cursor = level_cursor_.load(std::memory_order_acquire);
    if (pool_shutdown_.load(std::memory_order_acquire)) {
      return;
    }
    if ((cursor >> kGenShift) == seen_generation) {
      // Spin briefly (bridges the inter-level gap of a busy stream), then
      // park with a timed re-probe.
      const bool timed = obs::Registry::metrics_enabled();
      const std::int64_t idle_start = timed ? obs::steady_now_ns() : 0;
      int spins = 0;
      for (;;) {
        cpu_pause();
        cursor = level_cursor_.load(std::memory_order_acquire);
        if (pool_shutdown_.load(std::memory_order_acquire)) {
          return;
        }
        if ((cursor >> kGenShift) != seen_generation) {
          break;
        }
        if (++spins >= kSpinsBeforePark) {
          obs::count(obs::Counter::kSchedWorkerParks);
          std::unique_lock<std::mutex> lock(park_mutex_);
          parked_workers_.fetch_add(1, std::memory_order_seq_cst);
          park_cv_.wait_for(lock, kParkPoll, [&] {
            return pool_shutdown_.load(std::memory_order_acquire) ||
                   (level_cursor_.load(std::memory_order_acquire) >> kGenShift) !=
                       seen_generation;
          });
          parked_workers_.fetch_sub(1, std::memory_order_relaxed);
          spins = 0;
        }
      }
      if (timed) {
        obs::count(obs::Counter::kSchedWorkerIdleNs,
                   static_cast<std::uint64_t>(obs::steady_now_ns() - idle_start));
      }
    }
    seen_generation = cursor >> kGenShift;
    work_on_level(seen_generation, slot);
  }
}

void Scheduler::merge_level_effects(const std::vector<Reaction*>& level_reactions) {
  const std::lock_guard<std::mutex> lock(staging_mutex_);
  // K-way merge of the per-worker effect buffers in batch-index order:
  // each worker's buffer is already sorted (claims are monotonic), and an
  // index executes on exactly one worker, so the merged stream replays the
  // exact staging/cleanup sequence of a serial execution.
  for (std::size_t w = 0; w < worker_slot_count_; ++w) {
    worker_slots_[w].merge_cursor = 0;
  }
  for (;;) {
    WorkerSlot* best = nullptr;
    for (std::size_t w = 0; w < worker_slot_count_; ++w) {
      WorkerSlot& slot = worker_slots_[w];
      if (slot.merge_cursor >= slot.records.size()) {
        continue;
      }
      if (best == nullptr || slot.records[slot.merge_cursor].batch_index <
                                 best->records[best->merge_cursor].batch_index) {
        best = &slot;
      }
    }
    if (best == nullptr) {
      break;
    }
    const StagedRecord& record = best->records[best->merge_cursor++];
    if (record.set_port) {
      set_ports_.push_back(record.port);
    } else {
      assert(record.port->triggered_closure().empty() ||
             record.port->triggered_closure().front()->level() > current_level_);
      for (Reaction* reaction : record.port->triggered_closure()) {
        stage_locked(*reaction);
      }
    }
  }
  for (std::size_t w = 0; w < worker_slot_count_; ++w) {
    worker_slots_[w].records.clear();
  }
  if (trace_.enabled()) {
    for (std::size_t w = 0; w < worker_slot_count_; ++w) {
      worker_slots_[w].merge_cursor = 0;
    }
    for (;;) {
      WorkerSlot* best = nullptr;
      for (std::size_t w = 0; w < worker_slot_count_; ++w) {
        WorkerSlot& slot = worker_slots_[w];
        if (slot.merge_cursor >= slot.trace.size()) {
          continue;
        }
        if (best == nullptr || slot.trace[slot.merge_cursor].batch_index <
                                   best->trace[best->merge_cursor].batch_index) {
          best = &slot;
        }
      }
      if (best == nullptr) {
        break;
      }
      const LocalTraceRecord& record = best->trace[best->merge_cursor++];
      trace_.record(current_tag_, level_reactions[record.batch_index]->fqn(), record.violated);
    }
    for (std::size_t w = 0; w < worker_slot_count_; ++w) {
      worker_slots_[w].trace.clear();
    }
  }
}

void Scheduler::finalize_tag_locked() {
  const std::lock_guard<std::mutex> staging_lock(staging_mutex_);
  for (BasePort* port : set_ports_) {
    port->cleanup();
  }
  set_ports_.clear();
  for (BaseAction* action : active_actions_) {
    action->cleanup();
  }
  active_actions_.clear();
}

std::optional<Scheduler::TagResult> Scheduler::process_next_tag(TimePoint horizon) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (state_ != State::kRunning) {
    return std::nullopt;
  }
  Tag next = event_queue_.earliest();
  if (stop_tag_ < next) {
    next = stop_tag_;
  }
  if (next == Tag::maximum() || next.time > horizon) {
    return std::nullopt;
  }
  const bool is_stop = next == stop_tag_;
  prepare_tag_locked(next, is_stop);
  lock.unlock();

  executed_buffer_.clear();
  execute_staged();
  TagResult result;
  result.tag = next;
  result.executed = std::span<Reaction* const>(executed_buffer_);

  lock.lock();
  finalize_tag_locked();
  if (is_stop) {
    state_ = State::kFinished;
  } else if (stop_requested_) {
    // A reaction at this tag called request_shutdown(); honor it at the
    // next microstep.
    const Tag earliest_stop = current_tag_.delay(0);
    if (earliest_stop < stop_tag_) {
      stop_tag_ = earliest_stop;
    }
  }
  return result;
}

void Scheduler::run_threaded() {
  auto* real_clock = dynamic_cast<RealClock*>(&clock_);
  if (real_clock == nullptr) {
    throw std::logic_error(
        "run_threaded requires a RealClock; use SimDriver for simulated execution");
  }
  // Spawn the worker pool (the orchestrating thread is worker 0).
  for (unsigned i = 1; i < workers_; ++i) {
    worker_threads_.emplace_back([this, i] { worker_loop(i); });
  }

  start_at(Tag{clock_.now(), 0});

  std::unique_lock<std::mutex> lock(mutex_);
  while (state_ == State::kRunning) {
    Tag next = event_queue_.earliest();
    if (stop_tag_ < next) {
      next = stop_tag_;
    }
    if (next == Tag::maximum()) {
      if (keepalive_) {
        cv_.wait(lock);
        continue;
      }
      // Nothing left to do: shut down at the next microstep.
      const Tag earliest_stop = current_tag_.delay(0);
      if (earliest_stop < stop_tag_) {
        stop_tag_ = earliest_stop;
      }
      continue;
    }
    // Never handle an event before physical time exceeds its tag.
    if (clock_.now() < next.time) {
      cv_.wait_until(lock, real_clock->to_chrono(next.time));
      continue;  // re-evaluate: an earlier event or stop may have arrived
    }
    const bool is_stop = next == stop_tag_;
    prepare_tag_locked(next, is_stop);
    lock.unlock();
    executed_buffer_.clear();
    execute_staged();
    lock.lock();
    finalize_tag_locked();
    if (is_stop) {
      state_ = State::kFinished;
    } else if (stop_requested_) {
      const Tag earliest_stop = current_tag_.delay(0);
      if (earliest_stop < stop_tag_) {
        stop_tag_ = earliest_stop;
      }
    }
  }
}

}  // namespace dear::reactor
