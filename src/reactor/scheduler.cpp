#include "reactor/scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "reactor/action.hpp"
#include "reactor/environment.hpp"
#include "reactor/port.hpp"

namespace dear::reactor {

Scheduler::Scheduler(Environment& environment, PhysicalClock& clock)
    : environment_(environment), clock_(clock) {}

Scheduler::~Scheduler() {
  {
    const std::lock_guard<std::mutex> lock(pool_mutex_);
    pool_shutdown_ = true;
  }
  pool_cv_.notify_all();
  for (auto& thread : worker_threads_) {
    thread.join();
  }
}

void Scheduler::configure(int level_count, unsigned workers, bool keepalive, Duration timeout) {
  staged_.resize(static_cast<std::size_t>(level_count));
  workers_ = workers == 0 ? 1 : workers;
  keepalive_ = keepalive;
  timeout_ = timeout;
}

void Scheduler::enqueue_locked(BaseAction* action, const Tag& tag) {
  assert(state_ != State::kFinished);
  if (event_queue_.insert(action, tag)) {
    wake_pending_.store(true, std::memory_order_release);
  }
}

void Scheduler::enqueue_batch_locked(BaseAction* const* actions, std::size_t count,
                                     const Tag& tag) {
  assert(state_ != State::kFinished);
  const bool was_earliest = event_queue_.empty() || tag < event_queue_.earliest();
  event_queue_.insert_batch(actions, count, tag);
  if (was_earliest && count > 0) {
    wake_pending_.store(true, std::memory_order_release);
  }
}

void Scheduler::set_current_tag_locked(const Tag& tag) noexcept {
  current_tag_ = tag;
  // Seqlock write: odd sequence marks the snapshot in flux, the release
  // fence orders the field stores before the closing (even) increment.
  tag_seq_.fetch_add(1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  published_tag_time_.store(tag.time, std::memory_order_relaxed);
  published_tag_microstep_.store(tag.microstep, std::memory_order_relaxed);
  tag_seq_.fetch_add(1, std::memory_order_release);
}

void Scheduler::notify() {
  cv_.notify_all();
  bool expected = true;
  if (wake_pending_.compare_exchange_strong(expected, false) && wake_callback_) {
    wake_callback_();
  }
}

void Scheduler::request_stop() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (state_ == State::kFinished) {
      return;
    }
    stop_requested_ = true;
    const Tag earliest_stop = current_tag_.delay(0);
    if (earliest_stop < stop_tag_) {
      stop_tag_ = earliest_stop;
    }
    wake_pending_.store(true, std::memory_order_release);
  }
  notify();
}

void Scheduler::start_at(const Tag& start_tag) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (state_ != State::kIdle) {
    throw std::logic_error("scheduler already started");
  }
  state_ = State::kRunning;
  start_tag_ = start_tag;
  set_current_tag_locked(start_tag);
  if (timeout_ >= 0) {
    stop_tag_ = Tag{start_tag.time + timeout_, 0};
  }
  enqueue_batch_locked(startup_actions_.data(), startup_actions_.size(), start_tag);
  for (Timer* timer : timers_) {
    timer->arm(start_tag);
  }
}

Tag Scheduler::next_tag() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (state_ != State::kRunning) {
    return Tag::maximum();
  }
  Tag next = event_queue_.earliest();
  if (stop_tag_ < next) {
    next = stop_tag_;
  }
  return next;
}

void Scheduler::prepare_tag_locked(const Tag& tag, bool is_stop) {
  assert(tag >= current_tag_);
  set_current_tag_locked(tag);
  ++tags_processed_;
  busy_offset_ = 0;

  const std::lock_guard<std::mutex> staging_lock(staging_mutex_);
  if (event_queue_.pop_at(tag, popped_actions_)) {
    for (BaseAction* action : popped_actions_) {
      action->setup(tag);  // Timer::setup re-arms via enqueue_locked
      active_actions_.push_back(action);
      for (Reaction* reaction : action->triggered_reactions()) {
        stage_locked(*reaction);
      }
    }
  }
  if (is_stop) {
    for (BaseAction* action : shutdown_actions_) {
      action->setup(tag);
      active_actions_.push_back(action);
      for (Reaction* reaction : action->triggered_reactions()) {
        stage_locked(*reaction);
      }
    }
  }
}

void Scheduler::stage_locked(Reaction& reaction) {
  if (reaction.staged_for_ == current_tag_) {
    return;  // already staged at this tag
  }
  reaction.staged_for_ = current_tag_;
  assert(reaction.level() >= 0);
  assert(static_cast<std::size_t>(reaction.level()) < staged_.size());
  staged_[static_cast<std::size_t>(reaction.level())].push_back(&reaction);
}

void Scheduler::stage_port_triggers(BasePort& port) {
  const std::lock_guard<std::mutex> lock(staging_mutex_);
  assert(port.triggered_closure().empty() ||
         port.triggered_closure().front()->level() > current_level_);
  for (Reaction* reaction : port.triggered_closure()) {
    stage_locked(*reaction);
  }
}

void Scheduler::register_set_port(BasePort& port) {
  const std::lock_guard<std::mutex> lock(staging_mutex_);
  set_ports_.push_back(&port);
}

void Scheduler::execute_reaction(Reaction& reaction) {
  // busy_offset_ models execution time already consumed at this tag (DES
  // driver only; zero in threaded mode).
  const TimePoint physical_now = clock_.now() + busy_offset_;
  const bool violated =
      reaction.has_deadline() && physical_now > current_tag_.time + reaction.deadline();
  if (violated) {
    deadline_violations_.fetch_add(1, std::memory_order_relaxed);
  }
  if (trace_.enabled()) {
    const std::lock_guard<std::mutex> lock(staging_mutex_);
    trace_.record(current_tag_, reaction.fqn(), violated);
  }
  reaction.execute(current_tag_, physical_now);
  reactions_executed_.fetch_add(1, std::memory_order_relaxed);
  if (exec_cost_hook_) {
    busy_offset_ += exec_cost_hook_(reaction);
  }
}

void Scheduler::execute_staged() {
  for (std::size_t level = 0; level < staged_.size(); ++level) {
    // Swap with the reused batch buffer: the two vectors' capacities
    // rotate, so no level allocates in steady state.
    level_batch_.clear();
    {
      const std::lock_guard<std::mutex> lock(staging_mutex_);
      current_level_ = static_cast<int>(level);
      level_batch_.swap(staged_[level]);
    }
    if (level_batch_.empty()) {
      continue;
    }
    if (workers_ <= 1 || level_batch_.size() == 1) {
      for (Reaction* reaction : level_batch_) {
        execute_reaction(*reaction);
      }
    } else {
      run_level_parallel(level_batch_);
    }
    executed_buffer_.insert(executed_buffer_.end(), level_batch_.begin(), level_batch_.end());
  }
  {
    const std::lock_guard<std::mutex> lock(staging_mutex_);
    current_level_ = -1;
  }
}

void Scheduler::run_level_parallel(const std::vector<Reaction*>& level_reactions) {
  {
    const std::lock_guard<std::mutex> lock(pool_mutex_);
    pool_buffer_ = level_reactions;
    pool_work_ = &pool_buffer_;
    pool_index_.store(0, std::memory_order_relaxed);
    ++pool_generation_;
  }
  pool_cv_.notify_all();
  // The orchestrating thread participates too.
  for (;;) {
    const std::size_t index = pool_index_.fetch_add(1, std::memory_order_relaxed);
    if (index >= pool_buffer_.size()) {
      break;
    }
    execute_reaction(*pool_buffer_[index]);
  }
  std::unique_lock<std::mutex> lock(pool_mutex_);
  pool_done_cv_.wait(lock, [this] { return pool_active_ == 0; });
}

void Scheduler::worker_loop() {
  std::unique_lock<std::mutex> lock(pool_mutex_);
  std::uint64_t seen_generation = 0;
  for (;;) {
    pool_cv_.wait(lock,
                  [&] { return pool_shutdown_ || pool_generation_ != seen_generation; });
    if (pool_shutdown_) {
      return;
    }
    seen_generation = pool_generation_;
    const std::vector<Reaction*>* work = pool_work_;
    ++pool_active_;
    lock.unlock();
    for (;;) {
      const std::size_t index = pool_index_.fetch_add(1, std::memory_order_relaxed);
      if (index >= work->size()) {
        break;
      }
      execute_reaction(*(*work)[index]);
    }
    lock.lock();
    --pool_active_;
    if (pool_active_ == 0) {
      pool_done_cv_.notify_all();
    }
  }
}

void Scheduler::finalize_tag_locked() {
  const std::lock_guard<std::mutex> staging_lock(staging_mutex_);
  for (BasePort* port : set_ports_) {
    port->cleanup();
  }
  set_ports_.clear();
  for (BaseAction* action : active_actions_) {
    action->cleanup();
  }
  active_actions_.clear();
}

std::optional<Scheduler::TagResult> Scheduler::process_next_tag(TimePoint horizon) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (state_ != State::kRunning) {
    return std::nullopt;
  }
  Tag next = event_queue_.earliest();
  if (stop_tag_ < next) {
    next = stop_tag_;
  }
  if (next == Tag::maximum() || next.time > horizon) {
    return std::nullopt;
  }
  const bool is_stop = next == stop_tag_;
  prepare_tag_locked(next, is_stop);
  lock.unlock();

  executed_buffer_.clear();
  execute_staged();
  TagResult result;
  result.tag = next;
  result.executed = std::span<Reaction* const>(executed_buffer_);

  lock.lock();
  finalize_tag_locked();
  if (is_stop) {
    state_ = State::kFinished;
  } else if (stop_requested_) {
    // A reaction at this tag called request_shutdown(); honor it at the
    // next microstep.
    const Tag earliest_stop = current_tag_.delay(0);
    if (earliest_stop < stop_tag_) {
      stop_tag_ = earliest_stop;
    }
  }
  return result;
}

void Scheduler::run_threaded() {
  auto* real_clock = dynamic_cast<RealClock*>(&clock_);
  if (real_clock == nullptr) {
    throw std::logic_error(
        "run_threaded requires a RealClock; use SimDriver for simulated execution");
  }
  // Spawn the worker pool (the orchestrating thread is worker 0).
  for (unsigned i = 1; i < workers_; ++i) {
    worker_threads_.emplace_back([this] { worker_loop(); });
  }

  start_at(Tag{clock_.now(), 0});

  std::unique_lock<std::mutex> lock(mutex_);
  while (state_ == State::kRunning) {
    Tag next = event_queue_.earliest();
    if (stop_tag_ < next) {
      next = stop_tag_;
    }
    if (next == Tag::maximum()) {
      if (keepalive_) {
        cv_.wait(lock);
        continue;
      }
      // Nothing left to do: shut down at the next microstep.
      const Tag earliest_stop = current_tag_.delay(0);
      if (earliest_stop < stop_tag_) {
        stop_tag_ = earliest_stop;
      }
      continue;
    }
    // Never handle an event before physical time exceeds its tag.
    if (clock_.now() < next.time) {
      cv_.wait_until(lock, real_clock->to_chrono(next.time));
      continue;  // re-evaluate: an earlier event or stop may have arrived
    }
    const bool is_stop = next == stop_tag_;
    prepare_tag_locked(next, is_stop);
    lock.unlock();
    executed_buffer_.clear();
    execute_staged();
    lock.lock();
    finalize_tag_locked();
    if (is_stop) {
      state_ = State::kFinished;
    } else if (stop_requested_) {
      const Tag earliest_stop = current_tag_.delay(0);
      if (earliest_stop < stop_tag_) {
        stop_tag_ = earliest_stop;
      }
    }
  }
}

}  // namespace dear::reactor
