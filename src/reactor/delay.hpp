// Delayed connections.
//
// `environment.connect_delayed(a.out, b.in, d)` forwards every value with a
// logical delay of d (one microstep when d == 0) — the reactor-model
// equivalent of Lingua Franca's `after` connections. Implemented as a
// hidden relay reactor owned by the environment: a reaction moves the port
// value onto a logical action, whose min_delay realizes the offset.
#pragma once

#include "reactor/action.hpp"
#include "reactor/port.hpp"
#include "reactor/reactor.hpp"

namespace dear::reactor {

template <typename T>
class DelayRelay final : public Reactor {
 public:
  Input<T> in{"in", this};
  Output<T> out{"out", this};

  DelayRelay(std::string name, Environment& environment, Duration delay)
      : Reactor(std::move(name), environment), action_("delay", this, delay) {
    // The release reaction is declared *before* the capture reaction so the
    // intra-reactor priority edge points release -> capture; otherwise the
    // relay itself would close a dependency cycle in feedback topologies.
    add_reaction("release", [this] { out.set(action_.get_ptr()); })
        .triggered_by(action_)
        .writes(out);
    add_reaction("capture", [this] { action_.schedule(in.get_ptr()); }).triggered_by(in);
  }

 private:
  LogicalAction<T> action_;
};

}  // namespace dear::reactor
