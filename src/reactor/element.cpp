#include "reactor/element.hpp"

#include "reactor/reactor.hpp"

namespace dear::reactor {

Element::Element(std::string name, Reactor* container, Environment& environment)
    : name_(std::move(name)), container_(container), environment_(environment) {
  // The container's Element base is fully constructed before any of its
  // members, so its cached fqn is ready here.
  fqn_ = container_ == nullptr ? name_ : container_->fqn() + "." + name_;
}

}  // namespace dear::reactor
