#include "reactor/element.hpp"

#include "reactor/reactor.hpp"

namespace dear::reactor {

Element::Element(std::string name, Reactor* container, Environment& environment)
    : name_(std::move(name)), container_(container), environment_(environment) {}

std::string Element::fqn() const {
  if (container_ == nullptr) {
    return name_;
  }
  return container_->fqn() + "." + name_;
}

}  // namespace dear::reactor
