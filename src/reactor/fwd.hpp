#pragma once

#include <cstddef>
#include <memory>
#include <type_traits>

#include "common/pool_allocator.hpp"

namespace dear::reactor {

class Element;
class Reactor;
class BasePort;
template <typename T>
class Port;
class BaseAction;
class Reaction;
class DependencyGraph;
class Scheduler;
class Environment;
class SimDriver;

/// Values flowing through ports are immutable and shared: a single set()
/// fans out to many readers without copies, and no reader can mutate what
/// another reaction observes.
template <typename T>
using ImmutableValuePtr = std::shared_ptr<const T>;

/// Event values are allocated through the small-block pool: the combined
/// control-block + value allocation of a typical event (an Empty signal, a
/// sensor sample, a frame id) fits a pooled size class, so the steady-state
/// schedule → execute → release cycle never touches the system allocator.
/// Oversized values fall through to operator new inside the pool;
/// over-aligned types bypass it entirely (the pool serves fundamental
/// alignment only).
template <typename T, typename... Args>
[[nodiscard]] ImmutableValuePtr<T> make_immutable_value(Args&&... args) {
  if constexpr (alignof(T) > alignof(std::max_align_t)) {
    return std::make_shared<const T>(std::forward<Args>(args)...);
  } else {
    return std::allocate_shared<const T>(common::PoolAllocator<std::remove_const_t<T>>{},
                                         std::forward<Args>(args)...);
  }
}

/// Payload type for pure signals (presence only).
struct Empty {
  bool operator==(const Empty&) const = default;
};

}  // namespace dear::reactor
