#pragma once

#include <memory>

namespace dear::reactor {

class Element;
class Reactor;
class BasePort;
template <typename T>
class Port;
class BaseAction;
class Reaction;
class Scheduler;
class Environment;
class SimDriver;

/// Values flowing through ports are immutable and shared: a single set()
/// fans out to many readers without copies, and no reader can mutate what
/// another reaction observes.
template <typename T>
using ImmutableValuePtr = std::shared_ptr<const T>;

template <typename T, typename... Args>
[[nodiscard]] ImmutableValuePtr<T> make_immutable_value(Args&&... args) {
  return std::make_shared<const T>(std::forward<Args>(args)...);
}

/// Payload type for pure signals (presence only).
struct Empty {
  bool operator==(const Empty&) const = default;
};

}  // namespace dear::reactor
