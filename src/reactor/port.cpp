#include "reactor/port.hpp"

#include <stdexcept>

#include "reactor/environment.hpp"
#include "reactor/reactor.hpp"

namespace dear::reactor {

BasePort::BasePort(std::string name, PortDirection direction, Reactor* container,
                   Environment& environment)
    : Element(std::move(name), container, environment), direction_(direction) {
  if (container != nullptr) {
    container->register_port(this);
  }
}

void BasePort::bind_to(BasePort* sink) {
  if (sink->inward_ != nullptr) {
    throw std::logic_error("port already has an inward binding: " + sink->fqn());
  }
  if (sink == this) {
    throw std::logic_error("cannot connect a port to itself: " + fqn());
  }
  sink->inward_ = this;
  outward_.push_back(sink);
}

void BasePort::cache_closure() {
  closure_.clear();
  // Triggers of this port plus those of every transitively bound sink.
  std::vector<const BasePort*> frontier{this};
  while (!frontier.empty()) {
    const BasePort* port = frontier.back();
    frontier.pop_back();
    closure_.insert(closure_.end(), port->triggers_.begin(), port->triggers_.end());
    for (const BasePort* sink : port->outward_) {
      frontier.push_back(sink);
    }
  }
}

void BasePort::signal_presence() {
  present_ = true;  // set() is only legal on binding sources
  Scheduler& scheduler = environment().scheduler();
  scheduler.stage_port_triggers(*this);
  scheduler.register_set_port(*this);
}

}  // namespace dear::reactor
