// Base class for every named element of a reactor program (reactors,
// ports, actions, reactions). Provides the containment hierarchy and
// fully-qualified names used in diagnostics and traces.
#pragma once

#include <string>

#include "reactor/fwd.hpp"

namespace dear::reactor {

class Element {
 public:
  Element(std::string name, Reactor* container, Environment& environment);
  virtual ~Element() = default;

  Element(const Element&) = delete;
  Element& operator=(const Element&) = delete;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Dotted path from the top-level reactor, e.g. "pipeline.cv.frame_in".
  /// The containment hierarchy is fixed at construction, so the path is
  /// computed once then — per-call recomputation used to dominate the
  /// tracing hot path (one string build per reaction execution).
  [[nodiscard]] const std::string& fqn() const noexcept { return fqn_; }

  [[nodiscard]] Reactor* container() const noexcept { return container_; }
  [[nodiscard]] Environment& environment() const noexcept { return environment_; }

 private:
  std::string name_;
  std::string fqn_;
  Reactor* container_;
  Environment& environment_;
};

}  // namespace dear::reactor
