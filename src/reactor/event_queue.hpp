// Pooled event queue (the scheduler's core data structure).
//
// Replaces the previous std::map<Tag, std::vector<BaseAction*>>: one
// binary min-heap of (tag, sequence, action) entries over a flat vector.
// Tag buckets are formed lazily at pop time — pop_at drains every entry
// carrying the requested tag, coalescing duplicates — so the steady-state
// schedule → pop cycle performs zero allocations and zero pointer chasing
// (the std::map paid one tree-node allocation per tag plus a fresh bucket
// vector, and walked red-black tree nodes on every operation).
//
// Ordering contract (asserted against a std::map reference implementation
// in tests/reactor/event_queue_test.cpp): tags pop in ascending (time,
// microstep) order, and actions within one tag pop in first-insertion
// order with duplicate inserts of the same action coalesced — bit-exactly
// the behavior of the map-based queue, so execution traces and digests
// are unchanged. The per-entry sequence number makes heap ordering total;
// no comparison ever falls back to pointer values.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

#include "common/binary_heap.hpp"
#include "reactor/fwd.hpp"
#include "reactor/tag.hpp"

namespace dear::reactor {

class EventQueue {
 public:
  EventQueue() { heap_.reserve(kInitialCapacity); }

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedules `action` at `tag`. Returns true when `tag` became the
  /// earliest pending tag.
  bool insert(BaseAction* action, const Tag& tag) {
    const bool was_earliest = heap_.empty() || tag < heap_.top().tag;
    heap_.push(Entry{tag, next_sequence_++, action});
    return was_earliest;
  }

  /// Inserts `count` actions at one tag.
  void insert_batch(BaseAction* const* actions, std::size_t count, const Tag& tag) {
    for (std::size_t i = 0; i < count; ++i) {
      heap_.push(Entry{tag, next_sequence_++, actions[i]});
    }
  }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }

  /// Pending entries (>= the number of distinct pending tags).
  [[nodiscard]] std::size_t pending_events() const noexcept { return heap_.size(); }

  /// Earliest pending tag, or Tag::maximum() when empty.
  [[nodiscard]] Tag earliest() const noexcept {
    return heap_.empty() ? Tag::maximum() : heap_.top().tag;
  }

  /// When events exist at exactly `tag` — which, by scheduler invariant,
  /// can only be the earliest — drains them all into `out` (replacing
  /// out's contents, retaining capacity) in first-insertion order with
  /// duplicate actions coalesced. Returns false and leaves `out` empty
  /// otherwise.
  bool pop_at(const Tag& tag, std::vector<BaseAction*>& out) {
    out.clear();
    if (heap_.empty() || heap_.top().tag != tag) {
      // The requested tag is <= the earliest pending tag, so "not at the
      // top" means "not queued" (e.g. the stop tag).
      assert(heap_.empty() || tag < heap_.top().tag);
      return false;
    }
    do {
      BaseAction* action = heap_.top().action;
      heap_.pop();
      // Duplicate inserts of one action at one tag coalesce (the action's
      // pending value was overwritten); same linear scan the map queue
      // did on insert — same-tag batches are small.
      if (std::find(out.begin(), out.end(), action) == out.end()) {
        out.push_back(action);
      }
    } while (!heap_.empty() && heap_.top().tag == tag);
    return true;
  }

 private:
  struct Entry {
    Tag tag;
    std::uint64_t sequence;  // insertion order within equal tags
    BaseAction* action;
  };
  struct EntryLess {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.tag != b.tag) {
        return a.tag < b.tag;
      }
      return a.sequence < b.sequence;
    }
  };

  static constexpr std::size_t kInitialCapacity = 64;

  common::BinaryHeap<Entry, EntryLess> heap_;
  std::uint64_t next_sequence_{0};
};

}  // namespace dear::reactor
