#include "reactor/graph.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>
#include <unordered_map>

#include "reactor/port.hpp"
#include "reactor/reaction.hpp"
#include "reactor/reactor.hpp"

namespace dear::reactor {

DependencyGraph::DependencyGraph(const std::vector<Reactor*>& top_level) {
  for (Reactor* reactor : top_level) {
    collect(reactor);
  }
  build_edges();
}

void DependencyGraph::collect(Reactor* reactor) {
  all_reactors_.push_back(reactor);
  for (const auto& reaction : reactor->reactions()) {
    reactions_.push_back(reaction.get());
  }
  for (Reactor* child : reactor->children()) {
    collect(child);
  }
}

namespace {

/// All ports reachable from `port` through outward bindings (inclusive).
void downstream_ports(BasePort* port, std::vector<BasePort*>& out) {
  out.push_back(port);
  for (BasePort* sink : port->outward_bindings()) {
    downstream_ports(sink, out);
  }
}

}  // namespace

void DependencyGraph::build_edges() {
  std::unordered_map<const Reaction*, std::size_t> index;
  index.reserve(reactions_.size());
  for (std::size_t i = 0; i < reactions_.size(); ++i) {
    index[reactions_[i]] = i;
  }
  edges_.assign(reactions_.size(), {});

  // Port dataflow edges: writer -> (transitively connected) reader/triggeree.
  for (std::size_t i = 0; i < reactions_.size(); ++i) {
    for (BasePort* effect : reactions_[i]->effect_ports()) {
      std::vector<BasePort*> reachable;
      downstream_ports(effect, reachable);
      for (BasePort* port : reachable) {
        for (Reaction* reader : port->triggered_reactions()) {
          edges_[i].push_back(index.at(reader));
        }
      }
    }
  }
  // Reads that do not trigger still order the reader after the writer; the
  // dependency set of a reaction includes both triggers and reads, so a
  // second pass adds writer->reader edges for read-only dependencies.
  for (std::size_t i = 0; i < reactions_.size(); ++i) {
    for (BasePort* dependency : reactions_[i]->dependency_ports()) {
      // Find the source of the binding chain, then all its writers.
      BasePort* source = dependency;
      while (source->inward_binding() != nullptr) {
        source = source->inward_binding();
      }
      for (Reaction* writer : source->writers()) {
        edges_[index.at(writer)].push_back(i);
      }
    }
  }
  // Intra-reactor priority chain.
  for (Reactor* reactor : all_reactors_) {
    const auto& list = reactor->reactions();
    for (std::size_t k = 1; k < list.size(); ++k) {
      edges_[index.at(list[k - 1].get())].push_back(index.at(list[k].get()));
    }
  }
}

const DependencyGraph::LevelAnalysis& DependencyGraph::analyze() {
  if (analyzed_) {
    return analysis_;
  }
  const std::size_t n = reactions_.size();
  std::vector<int> indegree(n, 0);
  for (const auto& targets : edges_) {
    for (const std::size_t target : targets) {
      ++indegree[target];
    }
  }
  std::deque<std::size_t> ready;
  level_.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    if (indegree[i] == 0) {
      ready.push_back(i);
    }
  }
  std::size_t visited = 0;
  int max_level = -1;
  while (!ready.empty()) {
    const std::size_t node = ready.front();
    ready.pop_front();
    ++visited;
    max_level = std::max(max_level, level_[node]);
    for (const std::size_t target : edges_[node]) {
      level_[target] = std::max(level_[target], level_[node] + 1);
      if (--indegree[target] == 0) {
        ready.push_back(target);
      }
    }
  }
  analysis_.acyclic = visited == n;
  analysis_.level_count = max_level + 1;
  analysis_.cyclic.clear();
  for (std::size_t i = 0; i < n; ++i) {
    if (indegree[i] > 0) {
      analysis_.cyclic.push_back(i);
    }
  }
  by_level_.assign(analysis_.acyclic ? static_cast<std::size_t>(analysis_.level_count) : 0, {});
  if (analysis_.acyclic) {
    for (std::size_t i = 0; i < n; ++i) {
      by_level_[static_cast<std::size_t>(level_[i])].push_back(reactions_[i]);
    }
  }
  analyzed_ = true;
  return analysis_;
}

int DependencyGraph::assign_levels() {
  const LevelAnalysis& analysis = analyze();
  if (!analysis.acyclic) {
    // Collect the reactions on cycles for the error message.
    std::string names;
    for (const std::size_t i : analysis.cyclic) {
      if (!names.empty()) {
        names += ", ";
      }
      names += reactions_[i]->fqn();
    }
    throw std::logic_error("reactor program has a dependency cycle involving: " + names);
  }
  for (std::size_t i = 0; i < reactions_.size(); ++i) {
    reactions_[i]->set_level(level_[i]);
  }
  level_count_ = analysis.level_count;
  return level_count_ < 1 ? 1 : level_count_;
}

SchedulePlan DependencyGraph::export_plan() {
  const LevelAnalysis& analysis = analyze();
  if (!analysis.acyclic) {
    throw std::logic_error("cannot export a schedule plan from a cyclic reactor program");
  }
  SchedulePlan plan;
  plan.entries.reserve(reactions_.size());
  for (std::size_t i = 0; i < reactions_.size(); ++i) {
    plan.entries.push_back(SchedulePlan::Entry{reactions_[i]->fqn(), level_[i]});
  }
  plan.level_count = analysis.level_count;
  return plan;
}

int DependencyGraph::apply_plan(const SchedulePlan& plan) {
  if (plan.entries.size() != reactions_.size()) {
    throw std::logic_error("schedule plan is stale: plan lists " +
                           std::to_string(plan.entries.size()) + " reactions, graph has " +
                           std::to_string(reactions_.size()));
  }
  // Match plan entries to live reactions by fqn; fqns are unique within an
  // environment, so a bijection exists iff every lookup succeeds.
  std::unordered_map<std::string, int> planned;
  planned.reserve(plan.entries.size());
  for (const SchedulePlan::Entry& entry : plan.entries) {
    if (entry.level < 0 || entry.level >= plan.level_count) {
      throw std::logic_error("schedule plan is invalid: level " + std::to_string(entry.level) +
                             " of '" + entry.fqn + "' is out of range");
    }
    if (!planned.emplace(entry.fqn, entry.level).second) {
      throw std::logic_error("schedule plan is invalid: duplicate entry for '" + entry.fqn + "'");
    }
  }
  std::vector<int> levels(reactions_.size(), 0);
  int max_level = -1;
  for (std::size_t i = 0; i < reactions_.size(); ++i) {
    const auto it = planned.find(reactions_[i]->fqn());
    if (it == planned.end()) {
      throw std::logic_error("schedule plan is stale: no entry for reaction '" +
                             reactions_[i]->fqn() + "'");
    }
    levels[i] = it->second;
    max_level = std::max(max_level, it->second);
  }
  // Every edge must stay level-monotone, or the scheduler would release a
  // reaction before its predecessors — the plan no longer fits the graph.
  for (std::size_t i = 0; i < reactions_.size(); ++i) {
    for (const std::size_t target : edges_[i]) {
      if (levels[i] >= levels[target]) {
        throw std::logic_error("schedule plan is stale: edge '" + reactions_[i]->fqn() +
                               "' -> '" + reactions_[target]->fqn() +
                               "' is not level-monotone under the plan");
      }
    }
  }

  // Commit: fill the cached analysis state exactly as analyze() would, so
  // levels()/level_of() behave identically with or without a plan.
  level_ = std::move(levels);
  analysis_.acyclic = true;
  analysis_.level_count = max_level + 1;
  analysis_.cyclic.clear();
  by_level_.assign(static_cast<std::size_t>(analysis_.level_count), {});
  for (std::size_t i = 0; i < reactions_.size(); ++i) {
    by_level_[static_cast<std::size_t>(level_[i])].push_back(reactions_[i]);
    reactions_[i]->set_level(level_[i]);
  }
  analyzed_ = true;
  level_count_ = analysis_.level_count;
  return level_count_ < 1 ? 1 : level_count_;
}

const std::vector<Reaction*>& DependencyGraph::writers_of(const BasePort& port) noexcept {
  const BasePort* source = &port;
  while (source->inward_binding() != nullptr) {
    source = source->inward_binding();
  }
  return source->writers();
}

std::vector<const Reaction*> DependencyGraph::dependencies_of(const Reaction& reaction) const {
  std::vector<const Reaction*> deps;
  const std::size_t target = index_of(reaction);
  if (target == reactions_.size()) {
    return deps;
  }
  for (std::size_t i = 0; i < reactions_.size(); ++i) {
    if (std::find(edges_[i].begin(), edges_[i].end(), target) != edges_[i].end()) {
      deps.push_back(reactions_[i]);
    }
  }
  return deps;
}

std::size_t DependencyGraph::index_of(const Reaction& reaction) const noexcept {
  for (std::size_t i = 0; i < reactions_.size(); ++i) {
    if (reactions_[i] == &reaction) {
      return i;
    }
  }
  return reactions_.size();
}

}  // namespace dear::reactor
