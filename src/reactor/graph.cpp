#include "reactor/graph.hpp"

#include <deque>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "reactor/port.hpp"
#include "reactor/reaction.hpp"
#include "reactor/reactor.hpp"

namespace dear::reactor {

DependencyGraph::DependencyGraph(const std::vector<Reactor*>& top_level) {
  for (Reactor* reactor : top_level) {
    collect(reactor);
  }
  build_edges();
}

void DependencyGraph::collect(Reactor* reactor) {
  all_reactors_.push_back(reactor);
  for (const auto& reaction : reactor->reactions()) {
    reactions_.push_back(reaction.get());
  }
  for (Reactor* child : reactor->children()) {
    collect(child);
  }
}

namespace {

/// All ports reachable from `port` through outward bindings (inclusive).
void downstream_ports(BasePort* port, std::vector<BasePort*>& out) {
  out.push_back(port);
  for (BasePort* sink : port->outward_bindings()) {
    downstream_ports(sink, out);
  }
}

}  // namespace

void DependencyGraph::build_edges() {
  std::unordered_map<const Reaction*, std::size_t> index;
  index.reserve(reactions_.size());
  for (std::size_t i = 0; i < reactions_.size(); ++i) {
    index[reactions_[i]] = i;
  }
  edges_.assign(reactions_.size(), {});

  // Port dataflow edges: writer -> (transitively connected) reader/triggeree.
  for (std::size_t i = 0; i < reactions_.size(); ++i) {
    for (BasePort* effect : reactions_[i]->effect_ports()) {
      std::vector<BasePort*> reachable;
      downstream_ports(effect, reachable);
      for (BasePort* port : reachable) {
        for (Reaction* reader : port->triggered_reactions()) {
          edges_[i].push_back(index.at(reader));
        }
      }
    }
  }
  // Reads that do not trigger still order the reader after the writer; the
  // dependency set of a reaction includes both triggers and reads, so a
  // second pass adds writer->reader edges for read-only dependencies.
  for (std::size_t i = 0; i < reactions_.size(); ++i) {
    for (BasePort* dependency : reactions_[i]->dependency_ports()) {
      // Find the source of the binding chain, then all its writers.
      BasePort* source = dependency;
      while (source->inward_binding() != nullptr) {
        source = source->inward_binding();
      }
      for (Reaction* writer : source->writers()) {
        edges_[index.at(writer)].push_back(i);
      }
    }
  }
  // Intra-reactor priority chain.
  for (Reactor* reactor : all_reactors_) {
    const auto& list = reactor->reactions();
    for (std::size_t k = 1; k < list.size(); ++k) {
      edges_[index.at(list[k - 1].get())].push_back(index.at(list[k].get()));
    }
  }
}

int DependencyGraph::assign_levels() {
  const std::size_t n = reactions_.size();
  std::vector<int> indegree(n, 0);
  for (const auto& targets : edges_) {
    for (const std::size_t target : targets) {
      ++indegree[target];
    }
  }
  std::deque<std::size_t> ready;
  std::vector<int> level(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    if (indegree[i] == 0) {
      ready.push_back(i);
    }
  }
  std::size_t visited = 0;
  int max_level = -1;
  while (!ready.empty()) {
    const std::size_t node = ready.front();
    ready.pop_front();
    ++visited;
    max_level = std::max(max_level, level[node]);
    for (const std::size_t target : edges_[node]) {
      level[target] = std::max(level[target], level[node] + 1);
      if (--indegree[target] == 0) {
        ready.push_back(target);
      }
    }
  }
  if (visited != n) {
    // Collect the reactions on cycles for the error message.
    std::string names;
    for (std::size_t i = 0; i < n; ++i) {
      if (indegree[i] > 0) {
        if (!names.empty()) {
          names += ", ";
        }
        names += reactions_[i]->fqn();
      }
    }
    throw std::logic_error("reactor program has a dependency cycle involving: " + names);
  }
  for (std::size_t i = 0; i < n; ++i) {
    reactions_[i]->set_level(level[i]);
  }
  level_count_ = max_level + 1;
  return level_count_ < 1 ? 1 : level_count_;
}

}  // namespace dear::reactor
