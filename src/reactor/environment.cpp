#include "reactor/environment.hpp"

#include "reactor/action.hpp"
#include "reactor/graph.hpp"
#include "reactor/reactor.hpp"

namespace dear::reactor {

Environment::Environment(PhysicalClock& clock, Config config)
    : clock_(clock), config_(config), scheduler_(*this, clock) {}

Environment::~Environment() = default;

void Environment::register_special_actions(Reactor* reactor) {
  for (BaseAction* action : reactor->actions()) {
    if (auto* timer = dynamic_cast<Timer*>(action); timer != nullptr) {
      scheduler_.register_timer(timer);
    } else if (dynamic_cast<StartupTrigger*>(action) != nullptr) {
      scheduler_.register_startup(action);
    } else if (dynamic_cast<ShutdownTrigger*>(action) != nullptr) {
      scheduler_.register_shutdown(action);
    }
  }
  for (BasePort* port : reactor->ports()) {
    port->cache_closure();
  }
  for (Reactor* child : reactor->children()) {
    register_special_actions(child);
  }
}

void Environment::set_schedule_plan(SchedulePlan plan) {
  if (assembled_) {
    throw std::logic_error("set_schedule_plan after assemble");
  }
  plan_ = std::make_unique<SchedulePlan>(std::move(plan));
}

void Environment::assemble() {
  if (assembled_) {
    return;
  }
  graph_ = std::make_unique<DependencyGraph>(top_level_);
  level_count_ = plan_ != nullptr ? graph_->apply_plan(*plan_) : graph_->assign_levels();
  for (Reactor* reactor : top_level_) {
    register_special_actions(reactor);
  }
  scheduler_.configure(level_count_, config_.workers, config_.keepalive, config_.timeout);
  scheduler_.trace().set_enabled(config_.tracing);
  assembled_ = true;
}

void Environment::run() {
  assemble();
  scheduler_.run_threaded();
}

void Environment::request_shutdown() { scheduler_.request_stop(); }

}  // namespace dear::reactor
