// Execution trace recorder.
//
// When enabled, the scheduler records every reaction execution as
// (tag, reaction fqn). Two runs of a deterministic program produce
// identical traces — the property the determinism test-suite asserts
// across repeated runs and worker counts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "reactor/tag.hpp"

namespace dear::reactor {

struct TraceRecord {
  Tag tag;
  std::string reaction;
  bool deadline_violated{false};

  bool operator==(const TraceRecord&) const = default;
};

class Trace {
 public:
  void set_enabled(bool enabled) noexcept { enabled_ = enabled; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  void record(const Tag& tag, std::string reaction, bool deadline_violated) {
    if (enabled_) {
      records_.push_back(TraceRecord{tag, std::move(reaction), deadline_violated});
    }
  }

  [[nodiscard]] const std::vector<TraceRecord>& records() const noexcept { return records_; }
  void clear() noexcept { records_.clear(); }

  [[nodiscard]] std::string to_string() const;

  bool operator==(const Trace& other) const { return records_ == other.records_; }

 private:
  bool enabled_{false};
  std::vector<TraceRecord> records_;
};

}  // namespace dear::reactor
