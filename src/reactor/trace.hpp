// Execution trace recorder.
//
// When enabled, the scheduler records every reaction execution as
// (tag, reaction fqn). Two runs of a deterministic program produce
// identical traces — the property the determinism test-suite asserts
// across repeated runs and worker counts.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/interner.hpp"
#include "reactor/tag.hpp"

namespace dear::reactor {

struct TraceRecord {
  Tag tag;
  /// Views a name interned by the owning Trace — valid for the Trace's
  /// lifetime, even after the traced reactors are destroyed.
  std::string_view reaction;
  bool deadline_violated{false};

  bool operator==(const TraceRecord&) const = default;
};

class Trace {
 public:
  void set_enabled(bool enabled) noexcept { enabled_ = enabled; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  /// Records one reaction execution. The name is interned on first sight
  /// (one allocation per distinct reaction, ever); every later record of
  /// the same reaction is allocation-free.
  void record(const Tag& tag, std::string_view reaction, bool deadline_violated) {
    if (enabled_) {
      records_.push_back(TraceRecord{tag, intern(reaction), deadline_violated});
    }
  }

  [[nodiscard]] const std::vector<TraceRecord>& records() const noexcept { return records_; }
  void clear() noexcept { records_.clear(); }

  [[nodiscard]] std::string to_string() const;

  bool operator==(const Trace& other) const { return records_ == other.records_; }

 private:
  [[nodiscard]] std::string_view intern(std::string_view name) { return names_.intern(name); }

  bool enabled_{false};
  std::vector<TraceRecord> records_;
  common::Interner names_;
};

}  // namespace dear::reactor
