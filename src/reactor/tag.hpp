// Logical time tags.
//
// "Communications between reactors occur via events that are associated
// with tags ... tags denote logical time and reactions are logically
// instantaneous" (paper §III.A). A tag is a (time, microstep) pair;
// microsteps order events that are logically simultaneous but causally
// distinct (superdense time).
#pragma once

#include <compare>
#include <cstdint>
#include <string>

#include "common/time.hpp"

namespace dear::reactor {

struct Tag {
  TimePoint time{0};
  std::uint32_t microstep{0};

  auto operator<=>(const Tag&) const = default;

  /// The tag at which an event scheduled from this tag with the given
  /// delay appears: a zero delay advances one microstep ("strictly later,
  /// logically simultaneous"); a positive delay advances time and resets
  /// the microstep.
  [[nodiscard]] Tag delay(Duration amount) const noexcept {
    if (amount <= 0) {
      return Tag{time, microstep + 1};
    }
    return Tag{time + amount, 0};
  }

  [[nodiscard]] static constexpr Tag maximum() noexcept {
    return Tag{kTimeMax, ~std::uint32_t{0}};
  }

  [[nodiscard]] std::string to_string() const;
};

}  // namespace dear::reactor
