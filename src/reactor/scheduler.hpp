// Event scheduler.
//
// One scheduler core serves two execution drivers:
//   * the threaded driver (run_threaded): a blocking loop that waits on a
//     real clock until physical time reaches the next tag, then executes
//     the staged reactions level by level on a worker pool — "a reactor
//     runtime scheduler is responsible for transparently exploiting
//     concurrency in the APG by mapping independent reactions to separate
//     worker threads" (paper §III.A);
//   * the DES driver (SimDriver in sim_driver.hpp): calls process_next_tag
//     from kernel callbacks, with physical time = simulation time.
//
// Reactions at one tag execute in level waves with a barrier per level
// (design decision documented in DESIGN.md §5). Events are never handled
// before physical time exceeds their tag, which is what makes externally
// tagged events (PTIDES safe-to-process) safe.
//
// Level execution is contention-free: the orchestrator publishes each
// level batch through a generation-stamped atomic cursor, workers CAS-claim
// chunks of it, and a completion counter replaces the old mutex+cv barrier
// — the orchestrator never waits for a worker that claimed nothing, so a
// worker pool on an oversubscribed host costs (almost) nothing. Reactions
// executing in parallel stage their downstream triggers into private
// per-worker buffers that are merged back in deterministic (level,
// batch-index) order, so staging, port cleanup and the execution trace are
// bit-identical to a serial run at every worker count (asserted by
// tests/reactor/parallel_conformance_test.cpp).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "reactor/event_queue.hpp"
#include "reactor/physical_clock.hpp"
#include "reactor/reaction.hpp"
#include "reactor/tag.hpp"
#include "reactor/trace.hpp"

namespace dear::reactor {

class BasePort;
class BaseAction;
class Timer;
class Environment;

class Scheduler {
 public:
  Scheduler(Environment& environment, PhysicalClock& clock);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // --- configuration (before start) -------------------------------------------

  void configure(int level_count, unsigned workers, bool keepalive, Duration timeout);

  /// Invoked (outside the lock) whenever the earliest pending tag becomes
  /// earlier than it was — the SimDriver uses this to re-arm its kernel
  /// wake-up.
  void set_wake_callback(std::function<void()> callback) { wake_callback_ = std::move(callback); }

  // --- event insertion ----------------------------------------------------------

  /// Runs `fn` under the scheduler mutex. Actions use this to install
  /// values in their pending map atomically with queue insertion.
  template <typename Fn>
  auto with_lock(Fn&& fn) {
    const std::lock_guard<std::mutex> lock(mutex_);
    return fn();
  }

  /// Inserts an event (requires the scheduler mutex held via with_lock).
  void enqueue_locked(BaseAction* action, const Tag& tag);

  /// Inserts `count` events at one tag under a single bucket lookup — the
  /// cheap path for callers that trigger several actions at the same tag
  /// (startup, coalesced port batches). Requires the scheduler mutex.
  void enqueue_batch_locked(BaseAction* const* actions, std::size_t count, const Tag& tag);

  /// Current logical tag (requires lock for exactness; used by actions
  /// inside with_lock).
  [[nodiscard]] const Tag& current_tag_locked() const noexcept { return current_tag_; }

  /// Lock-free snapshot of the current logical tag (seqlock over the
  /// published copy). Callers hit this once per reaction, so it must not
  /// contend with event insertion on the scheduler mutex.
  [[nodiscard]] Tag current_tag() const noexcept {
    for (;;) {
      const std::uint32_t before = tag_seq_.load(std::memory_order_acquire);
      const Tag tag{published_tag_time_.load(std::memory_order_relaxed),
                    published_tag_microstep_.load(std::memory_order_relaxed)};
      std::atomic_thread_fence(std::memory_order_acquire);
      if ((before & 1u) == 0 && tag_seq_.load(std::memory_order_relaxed) == before) {
        return tag;
      }
    }
  }

  /// Called after with_lock insertion to wake a waiting driver.
  void notify();

  // --- execution-time API (called from reaction bodies) ---------------------------

  /// Stages all reactions in the port's trigger closure at the current tag.
  void stage_port_triggers(BasePort& port);

  /// Registers a port for end-of-tag cleanup.
  void register_set_port(BasePort& port);

  /// Installs a modeled execution-cost hook (DES driver, single worker
  /// only): after each reaction executes, the hook returns the platform
  /// time it consumed; the accumulated offset is added to the physical
  /// time used in subsequent deadline checks at the same tag, so a slow
  /// reaction makes a later reaction at the same tag miss its deadline —
  /// exactly as it would on the real platform.
  void set_exec_cost_hook(std::function<Duration(const Reaction&)> hook) {
    exec_cost_hook_ = std::move(hook);
  }

  /// Modeled time consumed by the most recently processed tag.
  [[nodiscard]] Duration last_tag_cost() const noexcept { return busy_offset_; }

  // --- threaded driver ------------------------------------------------------------

  /// Blocking execution loop (requires a RealClock).
  void run_threaded();

  /// Requests shutdown at the earliest opportunity (thread-safe).
  void request_stop();

  // --- DES driver interface ---------------------------------------------------------

  /// Starts execution at the given tag: triggers startup actions and arms
  /// timers. Must be called exactly once before any processing.
  void start_at(const Tag& start_tag);

  /// Earliest pending tag, or Tag::maximum() when idle. Takes the stop tag
  /// into account (never returns a tag past it).
  [[nodiscard]] Tag next_tag() const;

  /// Processes the earliest pending tag if it is <= horizon; reactions run
  /// on the calling thread. Returns the executed reactions (for modeled
  /// cost accounting), or nullopt when nothing was processed. Processing
  /// the stop tag finishes execution.
  struct TagResult {
    Tag tag;
    /// Executed reactions in execution order; views a scheduler-owned
    /// buffer that is valid until the next process_next_tag call.
    std::span<Reaction* const> executed;
  };
  [[nodiscard]] std::optional<TagResult> process_next_tag(TimePoint horizon);

  [[nodiscard]] bool finished() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return state_ == State::kFinished;
  }

  /// True between start_at() and the processing of the stop tag.
  [[nodiscard]] bool running() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return state_ == State::kRunning;
  }

  // --- introspection ------------------------------------------------------------------

  [[nodiscard]] const Tag& start_tag() const noexcept { return start_tag_; }
  [[nodiscard]] std::uint64_t tags_processed() const noexcept { return tags_processed_; }
  [[nodiscard]] std::uint64_t reactions_executed() const noexcept {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < worker_slot_count_; ++i) {
      total += worker_slots_[i].reactions_executed.load(std::memory_order_relaxed);
    }
    return total;
  }
  [[nodiscard]] std::uint64_t deadline_violations() const noexcept {
    return deadline_violations_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] Trace& trace() noexcept { return trace_; }

  /// Startup/shutdown trigger registration (Environment assembly).
  void register_startup(BaseAction* action) { startup_actions_.push_back(action); }
  void register_shutdown(BaseAction* action) { shutdown_actions_.push_back(action); }
  void register_timer(Timer* timer) { timers_.push_back(timer); }

 private:
  enum class State : std::uint8_t { kIdle, kRunning, kFinished };

  // --- contention-free level pool types ----------------------------------------

  /// One effect recorded by a reaction executing on a worker: either a set
  /// port whose trigger closure must be staged, or a port registered for
  /// end-of-tag cleanup. batch_index (the producing reaction's position in
  /// the level batch) keys the deterministic merge.
  struct StagedRecord {
    std::uint32_t batch_index;
    bool set_port;
    BasePort* port;
  };
  struct LocalTraceRecord {
    std::uint32_t batch_index;
    bool violated;
  };
  /// Per-worker state, cache-line aligned: the execution counter and the
  /// private staging/trace buffers are written by exactly one worker, and
  /// padding keeps neighbouring workers' writes off each other's lines.
  struct alignas(64) WorkerSlot {
    std::atomic<std::uint64_t> reactions_executed{0};
    std::vector<StagedRecord> records;
    std::vector<LocalTraceRecord> trace;
    std::size_t merge_cursor{0};
  };

  /// level_cursor_ layout: generation << kGenShift | next unclaimed index.
  /// The generation stamp makes stale CAS attempts fail instead of
  /// claiming into a republished batch. Both sides truncate to 40 bits, so
  /// wrap is harmless for the protocol itself; an ABA claim would need a
  /// worker to stall across exactly a multiple of 2^40 published levels
  /// (days of continuous level turnover) between two loads.
  static constexpr std::uint64_t kGenShift = 24;
  static constexpr std::uint64_t kIndexMask = (std::uint64_t{1} << kGenShift) - 1;
  static constexpr std::uint64_t kGenMask = (std::uint64_t{1} << 40) - 1;
  static constexpr std::uint32_t kMaxLevelWidth = static_cast<std::uint32_t>(kIndexMask);

  /// Pops all actions at `tag`, runs setup, stages triggered reactions.
  /// Requires the lock; `is_stop` additionally triggers shutdown actions.
  void prepare_tag_locked(const Tag& tag, bool is_stop);

  /// Updates current_tag_ and publishes the seqlock snapshot. Requires the
  /// lock.
  void set_current_tag_locked(const Tag& tag) noexcept;

  /// Executes staged levels; the lock must NOT be held. Appends executed
  /// reactions to executed_buffer_.
  void execute_staged();

  /// Stages one reaction at the current tag (staging mutex must be held).
  void stage_locked(Reaction& reaction);

  /// End-of-tag cleanup of present ports/actions. Requires the lock.
  void finalize_tag_locked();

  void run_level_parallel(const std::vector<Reaction*>& level_reactions);
  /// CAS-claims chunks of the published level until none remain (workers
  /// and the orchestrator both run this).
  void work_on_level(std::uint64_t generation, WorkerSlot& slot);
  void worker_loop(std::size_t worker_index);
  /// Replays the workers' private effect/trace buffers in batch-index
  /// order — the exact order a serial execution would have produced.
  void merge_level_effects(const std::vector<Reaction*>& level_reactions);
  void execute_reaction(Reaction& reaction);
  void execute_reaction_parallel(Reaction& reaction, WorkerSlot& slot,
                                 std::uint32_t batch_index);

  Environment& environment_;
  PhysicalClock& clock_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::function<void()> wake_callback_;
  std::atomic<bool> wake_pending_{false};

  EventQueue event_queue_;
  Tag current_tag_{};
  Tag start_tag_{};
  Tag stop_tag_{Tag::maximum()};
  bool stop_requested_{false};
  State state_{State::kIdle};

  // Seqlock publication of current_tag_ for the lock-free current_tag().
  mutable std::atomic<std::uint32_t> tag_seq_{0};
  std::atomic<TimePoint> published_tag_time_{0};
  std::atomic<std::uint32_t> published_tag_microstep_{0};

  // Staging of reactions for the tag being processed.
  std::mutex staging_mutex_;
  std::vector<std::vector<Reaction*>> staged_;
  int current_level_{-1};
  std::vector<BasePort*> set_ports_;
  std::vector<BaseAction*> active_actions_;
  // Reused per-tag scratch (zero steady-state allocations in the loop).
  std::vector<BaseAction*> popped_actions_;
  std::vector<Reaction*> level_batch_buffer_;
  std::vector<Reaction*> executed_buffer_;

  // Configuration.
  unsigned workers_{1};
  bool keepalive_{false};
  Duration timeout_{-1};

  // Worker pool (threaded driver only). The orchestrator owns slot 0.
  std::vector<std::thread> worker_threads_;
  std::unique_ptr<WorkerSlot[]> worker_slots_;
  std::size_t worker_slot_count_{1};
  std::atomic<std::uint64_t> level_cursor_{0};
  std::atomic<std::uint32_t> level_size_{0};
  std::atomic<std::uint32_t> level_chunk_{1};
  std::atomic<std::uint32_t> level_completed_{0};
  std::atomic<Reaction* const*> level_batch_{nullptr};
  std::uint64_t level_generation_{0};  // orchestrator-only
  std::atomic<bool> pool_shutdown_{false};
  std::atomic<int> parked_workers_{0};
  std::mutex park_mutex_;
  std::condition_variable park_cv_;

  /// The executing worker's slot while a parallel level is in flight on
  /// this thread (null otherwise → reaction effects take the locked path).
  static thread_local WorkerSlot* active_slot_;
  /// Batch index of the reaction currently executing on this thread.
  static thread_local std::uint32_t active_batch_index_;

  std::function<Duration(const Reaction&)> exec_cost_hook_;
  Duration busy_offset_{0};

  std::vector<BaseAction*> startup_actions_;
  std::vector<BaseAction*> shutdown_actions_;
  std::vector<Timer*> timers_;

  std::uint64_t tags_processed_{0};
  std::atomic<std::uint64_t> deadline_violations_{0};
  Trace trace_;
};

}  // namespace dear::reactor
