#include "reactor/tag.hpp"

namespace dear::reactor {

std::string Tag::to_string() const {
  return "(" + format_duration(time) + ", " + std::to_string(microstep) + ")";
}

}  // namespace dear::reactor
