// Umbrella header for the reactor runtime — include this from application
// code. Also hosts the action template method definitions, which need the
// full Scheduler interface.
#pragma once

#include <algorithm>

#include "reactor/action.hpp"
#include "reactor/delay.hpp"
#include "reactor/environment.hpp"
#include "reactor/physical_clock.hpp"
#include "reactor/port.hpp"
#include "reactor/reaction.hpp"
#include "reactor/reactor.hpp"
#include "reactor/scheduler.hpp"
#include "reactor/sim_driver.hpp"
#include "reactor/tag.hpp"
#include "reactor/trace.hpp"

namespace dear::reactor {

template <typename T>
void Environment::connect_delayed(Port<T>& from, Port<T>& to, Duration delay) {
  auto relay = std::make_unique<DelayRelay<T>>("_delay" + std::to_string(relay_counter_++),
                                               *this, delay);
  connect(from, relay->in);
  connect(relay->out, to);
  owned_relays_.push_back(std::move(relay));
}

template <typename T>
void LogicalAction<T>::schedule(ImmutableValuePtr<T> value, Duration delay) {
  Scheduler& scheduler = this->environment().scheduler();
  scheduler.with_lock([&] {
    const Tag tag = scheduler.current_tag_locked().delay(this->min_delay() + delay);
    this->pending_[tag] = std::move(value);
    scheduler.enqueue_locked(this, tag);
  });
  scheduler.notify();
}

template <typename T>
void PhysicalAction<T>::schedule(ImmutableValuePtr<T> value, Duration delay) {
  Scheduler& scheduler = this->environment().scheduler();
  const TimePoint physical_now = this->environment().clock().now();
  scheduler.with_lock([&] {
    Tag tag{physical_now + this->min_delay() + delay, 0};
    // Physical actions may never be tagged at or before the current tag.
    if (tag <= scheduler.current_tag_locked()) {
      tag = scheduler.current_tag_locked().delay(0);
    }
    this->pending_[tag] = std::move(value);
    scheduler.enqueue_locked(this, tag);
  });
  scheduler.notify();
}

template <typename T>
bool PhysicalAction<T>::schedule_at(const Tag& tag, ImmutableValuePtr<T> value) {
  Scheduler& scheduler = this->environment().scheduler();
  const bool accepted = scheduler.with_lock([&] {
    if (tag <= scheduler.current_tag_locked()) {
      return false;  // tardy: the logical position has already been passed
    }
    this->pending_[tag] = std::move(value);
    scheduler.enqueue_locked(this, tag);
    return true;
  });
  if (accepted) {
    scheduler.notify();
  }
  return accepted;
}

}  // namespace dear::reactor
