// Physical time sources for the reactor runtime.
//
// The scheduler never handles an event before physical time exceeds its
// tag (paper §III.A); what "physical time" means is pluggable:
//   * RealClock — monotonic wall time (threaded execution),
//   * SimClock  — the DES kernel's time (simulated execution via SimDriver).
#pragma once

#include <chrono>

#include "common/time.hpp"
#include "sim/kernel.hpp"

namespace dear::reactor {

class PhysicalClock {
 public:
  virtual ~PhysicalClock() = default;
  [[nodiscard]] virtual TimePoint now() const = 0;
};

/// Monotonic wall clock; time 0 is the construction instant.
class RealClock final : public PhysicalClock {
 public:
  RealClock() : epoch_(std::chrono::steady_clock::now()) {}

  [[nodiscard]] TimePoint now() const override {
    const auto elapsed = std::chrono::steady_clock::now() - epoch_;
    return std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count();
  }

  /// Converts a reactor TimePoint to the equivalent steady_clock instant
  /// (used by the threaded scheduler's timed waits).
  [[nodiscard]] std::chrono::steady_clock::time_point to_chrono(TimePoint t) const {
    return epoch_ + std::chrono::nanoseconds(t);
  }

 private:
  std::chrono::steady_clock::time_point epoch_;
};

/// Physical time is simulation time.
class SimClock final : public PhysicalClock {
 public:
  explicit SimClock(const sim::Kernel& kernel) : kernel_(kernel) {}

  [[nodiscard]] TimePoint now() const override { return kernel_.now(); }

 private:
  const sim::Kernel& kernel_;
};

}  // namespace dear::reactor
