// Actions, timers and the startup/shutdown triggers.
//
// "Reactions can also be triggered by action events, which may emanate
// from asynchronous resources (e.g., a sporadic sensor) managed within the
// reactor. Such asynchronously scheduled actions, called physical actions,
// are tagged based on the last observed physical time" (paper §III.A).
//
// LogicalAction::schedule derives the event tag from the *current logical
// tag* plus a delay; PhysicalAction::schedule derives it from the physical
// clock and is safe to call from any thread (or from DES handlers in sim
// mode). PhysicalAction::schedule_at places an event at an explicit tag —
// the primitive the DEAR transactors use to realize the PTIDES
// safe-to-process rule (tag = t + D + L + E).
#pragma once

#include <stdexcept>
#include <vector>

#include "common/flat_map.hpp"
#include "reactor/element.hpp"
#include "reactor/fwd.hpp"
#include "reactor/tag.hpp"

namespace dear::reactor {

class BaseAction : public Element {
 public:
  BaseAction(std::string name, Reactor* container, Environment& environment,
             Duration min_delay = 0);

  [[nodiscard]] bool is_present() const noexcept { return present_; }
  [[nodiscard]] Duration min_delay() const noexcept { return min_delay_; }

  [[nodiscard]] const std::vector<Reaction*>& triggered_reactions() const noexcept {
    return triggers_;
  }
  void add_trigger(Reaction* reaction) { triggers_.push_back(reaction); }

 protected:
  friend class Scheduler;

  /// Installs the value scheduled for `tag` and marks the action present.
  /// Runs at the start of tag processing.
  virtual void setup(const Tag& tag) { present_ = true; (void)tag; }

  /// Clears presence at the end of tag processing.
  virtual void cleanup() noexcept { present_ = false; }

  bool present_{false};

 private:
  Duration min_delay_;
  std::vector<Reaction*> triggers_;
};

template <typename T>
class ValuedAction : public BaseAction {
 public:
  using BaseAction::BaseAction;

  /// Value carried by the event at the current tag.
  [[nodiscard]] const T& get() const {
    if (value_ == nullptr) {
      throw std::logic_error("get() on absent action: " + fqn());
    }
    return *value_;
  }

  [[nodiscard]] ImmutableValuePtr<T> get_ptr() const noexcept { return value_; }

 protected:
  void setup(const Tag& tag) override {
    BaseAction::setup(tag);
    const auto it = pending_.find(tag);
    value_ = it != pending_.end() ? it->second : nullptr;
    if (it != pending_.end()) {
      pending_.erase(it);
    }
  }

  void cleanup() noexcept override {
    BaseAction::cleanup();
    value_.reset();
  }

  /// Guarded by the scheduler lock (see Scheduler::schedule_*). A sorted
  /// flat map: the handful of in-flight tags per action make contiguous
  /// storage (no per-schedule node allocation) the right trade.
  common::FlatMap<Tag, ImmutableValuePtr<T>> pending_;
  ImmutableValuePtr<T> value_;
};

/// Scheduled relative to the current *logical* tag; only valid from within
/// reaction execution.
template <typename T = Empty>
class LogicalAction final : public ValuedAction<T> {
 public:
  LogicalAction(std::string name, Reactor* container, Duration min_delay = 0);

  /// Schedules an event `delay + min_delay` after the current tag (one
  /// microstep later when the total delay is zero).
  void schedule(ImmutableValuePtr<T> value, Duration delay = 0);
  void schedule(const T& value, Duration delay = 0) {
    schedule(make_immutable_value<T>(value), delay);
  }
  void schedule() requires std::same_as<T, Empty> { schedule(Empty{}); }
  void schedule_delayed(Duration delay) requires std::same_as<T, Empty> {
    schedule(Empty{}, delay);
  }
};

/// Scheduled from asynchronous contexts; the tag derives from physical time.
template <typename T = Empty>
class PhysicalAction final : public ValuedAction<T> {
 public:
  PhysicalAction(std::string name, Reactor* container, Duration min_delay = 0);

  /// Tags the event with (physical now + min_delay + delay). Thread-safe.
  void schedule(ImmutableValuePtr<T> value, Duration delay = 0);
  void schedule(const T& value, Duration delay = 0) {
    schedule(make_immutable_value<T>(value), delay);
  }
  void schedule() requires std::same_as<T, Empty> { schedule(Empty{}); }

  /// Places an event at an explicit tag (the DEAR safe-to-process entry
  /// point). Returns false — without scheduling — when `tag` is not
  /// strictly greater than the current tag (a tardy event). Thread-safe.
  [[nodiscard]] bool schedule_at(const Tag& tag, ImmutableValuePtr<T> value);
  [[nodiscard]] bool schedule_at(const Tag& tag, const T& value) {
    return schedule_at(tag, make_immutable_value<T>(value));
  }
};

/// Periodic timer: first fires at start + offset, then every period.
class Timer final : public BaseAction {
 public:
  Timer(std::string name, Reactor* container, Duration period, Duration offset = 0);

  [[nodiscard]] Duration period() const noexcept { return period_; }
  [[nodiscard]] Duration offset() const noexcept { return offset_; }

 protected:
  friend class Scheduler;
  void setup(const Tag& tag) override;

 private:
  friend class Environment;
  /// Called once at startup to arm the first firing.
  void arm(const Tag& start_tag);

  Duration period_;
  Duration offset_;
};

/// Present exactly at the start tag.
class StartupTrigger final : public BaseAction {
 public:
  StartupTrigger(std::string name, Reactor* container);
};

/// Present exactly at the shutdown tag.
class ShutdownTrigger final : public BaseAction {
 public:
  ShutdownTrigger(std::string name, Reactor* container);
};

}  // namespace dear::reactor
