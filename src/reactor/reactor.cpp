#include "reactor/reactor.hpp"

#include "reactor/environment.hpp"

namespace dear::reactor {

Reactor::Reactor(std::string name, Environment& environment)
    : Element(std::move(name), nullptr, environment) {
  environment.register_top_level(this);
}

Reactor::Reactor(std::string name, Reactor* parent)
    : Element(std::move(name), parent, parent->environment()) {
  parent->register_child(this);
}

Reaction& Reactor::add_reaction(std::string name, Reaction::Body body) {
  const int priority = static_cast<int>(reactions_.size());
  reactions_.push_back(
      std::make_unique<Reaction>(std::move(name), priority, this, std::move(body)));
  return *reactions_.back();
}

const Tag& Reactor::current_tag() const {
  return environment().scheduler().current_tag_locked();
}

TimePoint Reactor::logical_time() const { return current_tag().time; }

Duration Reactor::elapsed_logical_time() const {
  return logical_time() - environment().scheduler().start_tag().time;
}

TimePoint Reactor::physical_time() const { return environment().clock().now(); }

void Reactor::request_shutdown() const { environment().request_shutdown(); }

}  // namespace dear::reactor
