// Environment: owns the reactor topology and the scheduler.
//
// Lifecycle: construct reactors → connect ports → assemble() (validates
// the topology and computes the APG levels) → run() for threaded
// execution, or attach a SimDriver for discrete-event execution.
#pragma once

#include <memory>
#include <stdexcept>
#include <vector>

#include "reactor/physical_clock.hpp"
#include "reactor/port.hpp"
#include "reactor/scheduler.hpp"
#include "reactor/tag.hpp"

namespace dear::reactor {

struct SchedulePlan;

class Environment {
 public:
  struct Config {
    /// Worker threads for reaction execution (threaded driver only).
    unsigned workers{1};
    /// Keep running while the event queue is empty (needed whenever
    /// physical actions may be scheduled from outside).
    bool keepalive{false};
    /// Logical execution horizon; negative = unbounded.
    Duration timeout{-1};
    /// Record an execution trace (reaction fqn per tag).
    bool tracing{false};
  };

  explicit Environment(PhysicalClock& clock) : Environment(clock, Config{}) {}
  Environment(PhysicalClock& clock, Config config);
  ~Environment();  // out of line: owned relay reactors need the full type

  Environment(const Environment&) = delete;
  Environment& operator=(const Environment&) = delete;

  /// Connects `from` to `to`. Must be called before assemble(); `to` must
  /// not already have an inward binding.
  template <typename T>
  void connect(Port<T>& from, Port<T>& to) {
    if (assembled_) {
      throw std::logic_error("connect after assemble: " + from.fqn() + " -> " + to.fqn());
    }
    from.bind_to(&to);
  }

  /// Connects `from` to `to` with a logical delay: a value set at tag g
  /// appears on `to` at g + delay (g with the microstep incremented when
  /// delay == 0). Implemented via a hidden relay reactor owned by this
  /// environment.
  template <typename T>
  void connect_delayed(Port<T>& from, Port<T>& to, Duration delay);

  /// Validates the topology, computes APG levels, registers timers and
  /// startup/shutdown triggers. Idempotent.
  void assemble();

  /// Installs a precomputed level assignment: the next assemble() applies
  /// it (validated against the live topology) instead of running the
  /// topological sort. Must be called before assemble(); throws
  /// std::logic_error afterwards.
  void set_schedule_plan(SchedulePlan plan);

  /// Blocking threaded execution (assembles if needed). Returns after
  /// shutdown completes.
  void run();

  /// Thread-safe shutdown request; shutdown reactions run at the next
  /// microstep.
  void request_shutdown();

  [[nodiscard]] Tag current_tag() const { return scheduler_.current_tag(); }
  [[nodiscard]] TimePoint physical_time() const { return clock_.now(); }
  [[nodiscard]] TimePoint start_time() const noexcept { return scheduler_.start_tag().time; }

  [[nodiscard]] Scheduler& scheduler() noexcept { return scheduler_; }
  [[nodiscard]] PhysicalClock& clock() noexcept { return clock_; }
  [[nodiscard]] const Config& config() const noexcept { return config_; }
  [[nodiscard]] bool assembled() const noexcept { return assembled_; }
  [[nodiscard]] int level_count() const noexcept { return level_count_; }
  [[nodiscard]] Trace& trace() noexcept { return scheduler_.trace(); }

  /// The acyclic precedence graph computed by assemble(); nullptr before
  /// assembly. The level/writer/dependency tables it exposes are the
  /// contract consumed by the static verifier and (eventually) the static
  /// schedule specialization.
  [[nodiscard]] const DependencyGraph* graph() const noexcept { return graph_.get(); }

  [[nodiscard]] const std::vector<Reactor*>& top_level() const noexcept { return top_level_; }
  void register_top_level(Reactor* reactor) { top_level_.push_back(reactor); }

 private:
  void register_special_actions(Reactor* reactor);

  PhysicalClock& clock_;
  Config config_;
  Scheduler scheduler_;
  std::unique_ptr<DependencyGraph> graph_;
  std::unique_ptr<SchedulePlan> plan_;
  std::vector<Reactor*> top_level_;
  std::vector<std::unique_ptr<Reactor>> owned_relays_;
  int relay_counter_{0};
  bool assembled_{false};
  int level_count_{0};
};

}  // namespace dear::reactor
