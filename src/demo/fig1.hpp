// The Figure 1 client/server application.
//
//   int main() {
//     s = ServiceProxy();
//     s.set_value(1);
//     s.add(2);
//     result = s.get_value();
//     std::cout << result.get();
//   }
//
// The server implements set_value/add/get_value non-blocking; the runtime
// maps each invocation to a different thread, so "the order in which the
// calls are handled is determined purely by the thread scheduler" and the
// printed value is one of {0, 1, 2, 3}. This module provides:
//   * Fig1RealHarness   — the nondeterministic app over real threads
//                         (genuine OS scheduler nondeterminism),
//   * run_fig1_nondet_sim — the same app over the DES with seeded dispatch
//                         jitter (reproducible nondeterminism),
//   * run_fig1_dear_sim / run_fig1_dear_threaded — the DEAR version: the
//                         client issues the calls at successive logical
//                         tags through client method transactors, the
//                         server processes them in tag order; the printed
//                         value is always 3.
#pragma once

#include <cstdint>
#include <memory>

#include "common/time.hpp"

namespace dear::demo {

struct Fig1Outcome {
  /// The value the client prints (0, 1, 2 or 3).
  std::int32_t printed{-1};
  /// True when all three calls completed without communication errors.
  bool completed{false};
  /// DEAR variants: observable protocol errors (tardy/untagged/deadline).
  std::uint64_t protocol_errors{0};
};

/// Nondeterministic variant over real threads. One server is reused across
/// trials (its state is reset between trials).
class Fig1RealHarness {
 public:
  explicit Fig1RealHarness(std::size_t workers);
  ~Fig1RealHarness();

  Fig1RealHarness(const Fig1RealHarness&) = delete;
  Fig1RealHarness& operator=(const Fig1RealHarness&) = delete;

  /// Runs the client program once and returns the printed value.
  [[nodiscard]] Fig1Outcome run_trial();

  [[nodiscard]] std::size_t workers() const noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Nondeterministic variant on the DES; the seed drives dispatch jitter and
/// link latency, reproducing the thread-scheduler race reproducibly.
[[nodiscard]] Fig1Outcome run_fig1_nondet_sim(std::uint64_t seed);

/// DEAR variant on the DES: always prints 3.
[[nodiscard]] Fig1Outcome run_fig1_dear_sim(std::uint64_t seed);

/// DEAR variant over real threads and real time: always prints 3.
/// `call_spacing` is the logical spacing between the three calls.
[[nodiscard]] Fig1Outcome run_fig1_dear_threaded(std::size_t workers,
                                                 Duration call_spacing = kMillisecond);

}  // namespace dear::demo
