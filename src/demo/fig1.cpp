#include "demo/fig1.hpp"

#include <atomic>
#include <thread>

#include "ara/generated.hpp"
#include "ara/runtime.hpp"
#include "common/thread_pool.hpp"
#include "dear/dear.hpp"
#include "net/rt_network.hpp"
#include "net/sim_network.hpp"
#include "sim/sim_executor.hpp"
#include "someip/service_discovery.hpp"

namespace dear::demo {

namespace {

constexpr someip::ServiceId kCounterService = 0x2001;
constexpr someip::InstanceId kCounterInstance = 0x0001;
constexpr someip::MethodId kSetMethod = 0x0001;
constexpr someip::MethodId kAddMethod = 0x0002;
constexpr someip::MethodId kGetMethod = 0x0003;

constexpr net::Endpoint kServerEp{1, 20};
constexpr net::Endpoint kClientEp{2, 21};

/// The counter service, declared once as a descriptor; the classic
/// Skeleton/Proxy pair and the DEAR transactor bundles below all derive
/// from it. Method members bundle their arguments into a single request
/// value, exactly as the transactors model them.
struct Counter {
  static constexpr ara::meta::Method<std::int32_t, std::int32_t, kSetMethod> set{"set"};
  static constexpr ara::meta::Method<std::int32_t, std::int32_t, kAddMethod> add{"add"};
  static constexpr ara::meta::Method<reactor::Empty, std::int32_t, kGetMethod> get{"get"};
  static constexpr auto kInterface =
      ara::meta::service_interface("Counter", kCounterService, {1, 0}, set, add, get);
};

using CounterSkeleton = ara::Skeleton<Counter>;
using CounterProxy = ara::Proxy<Counter>;

/// The naive server: non-blocking methods over a shared state variable.
/// Mutual exclusion between invocations is enforced by the skeleton, but
/// no ordering is.
class CounterServer {
 public:
  explicit CounterServer(CounterSkeleton& skeleton) {
    skeleton.get(Counter::set).set_sync_handler([this](const std::int32_t& v) {
      value_ = v;
      return value_;
    });
    skeleton.get(Counter::add).set_sync_handler([this](const std::int32_t& v) {
      value_ += v;
      return value_;
    });
    skeleton.get(Counter::get).set_sync_handler([this](const reactor::Empty&) { return value_; });
  }

  void reset() noexcept { value_ = 0; }
  [[nodiscard]] std::int32_t value() const noexcept { return value_; }

 private:
  std::int32_t value_{0};
};

/// Runs the Figure 1 client body against a proxy; the three calls are
/// issued back-to-back without waiting ("non-blocking procedure calls").
Fig1Outcome run_client_body(CounterProxy& proxy) {
  Fig1Outcome outcome;
  auto set_future = proxy.get(Counter::set)(1);
  auto add_future = proxy.get(Counter::add)(2);
  auto get_future = proxy.get(Counter::get)(reactor::Empty{});
  const auto set_result = set_future.GetResult();
  const auto add_result = add_future.GetResult();
  const auto get_result = get_future.GetResult();
  outcome.completed =
      set_result.has_value() && add_result.has_value() && get_result.has_value();
  if (get_result.has_value()) {
    outcome.printed = get_result.value();
  }
  return outcome;
}

}  // namespace

// --- real-threads nondeterministic harness -------------------------------------

struct Fig1RealHarness::Impl {
  explicit Impl(std::size_t workers)
      : pool(workers), network(pool),
        server_rt(network, discovery, pool, kServerEp, 0x31),
        client_rt(network, discovery, pool, kClientEp, 0x32),
        skeleton(server_rt, kCounterInstance, ara::MethodCallProcessingMode::kEvent),
        server(skeleton) {
    skeleton.OfferService();
    proxy = std::make_unique<CounterProxy>(
        client_rt, kCounterInstance, *client_rt.resolve({kCounterService, kCounterInstance}));
    proxy->set_call_timeout(2 * kSecond);
  }

  common::ThreadPoolExecutor pool;
  someip::ServiceDiscovery discovery;
  net::RtNetwork network;
  ara::Runtime server_rt;
  ara::Runtime client_rt;
  CounterSkeleton skeleton;
  CounterServer server;
  std::unique_ptr<CounterProxy> proxy;
};

Fig1RealHarness::Fig1RealHarness(std::size_t workers)
    : impl_(std::make_unique<Impl>(workers)) {}

Fig1RealHarness::~Fig1RealHarness() = default;

std::size_t Fig1RealHarness::workers() const noexcept { return impl_->pool.worker_count(); }

Fig1Outcome Fig1RealHarness::run_trial() {
  // Trials are isolated: the previous trial waited on all three futures,
  // and the reset round-trips through the service itself.
  auto reset_future = impl_->proxy->get(Counter::set)(0);
  (void)reset_future.GetResult();
  return run_client_body(*impl_->proxy);
}

// --- DES nondeterministic variant ------------------------------------------------

Fig1Outcome run_fig1_nondet_sim(std::uint64_t seed) {
  common::Rng rng(seed);
  sim::Kernel kernel;
  net::SimNetwork network(kernel, rng.stream("net"));
  someip::ServiceDiscovery discovery;
  // The dispatch jitter models the thread wake-up races of the kEvent
  // processing mode.
  sim::SimExecutor executor(kernel, rng.stream("dispatch"));

  ara::Runtime server_rt(network, discovery, executor, kServerEp, 0x31);
  ara::Runtime client_rt(network, discovery, executor, kClientEp, 0x32);
  CounterSkeleton skeleton(server_rt, kCounterInstance, ara::MethodCallProcessingMode::kEvent);
  CounterServer server(skeleton);
  skeleton.OfferService();
  CounterProxy proxy(client_rt, kCounterInstance,
                     *client_rt.resolve({kCounterService, kCounterInstance}));

  Fig1Outcome outcome;
  auto set_future = proxy.get(Counter::set)(1);
  auto add_future = proxy.get(Counter::add)(2);
  auto get_future = proxy.get(Counter::get)(reactor::Empty{});
  kernel.run();
  outcome.completed = set_future.is_ready() && add_future.is_ready() && get_future.is_ready();
  if (get_future.is_ready() && get_future.GetResult().has_value()) {
    outcome.printed = get_future.GetResult().value();
  }
  return outcome;
}

// --- DEAR variants -----------------------------------------------------------------

namespace {

/// Deterministic counter server logic: one reaction per method, processing
/// strictly in tag order.
class CounterLogic final : public reactor::Reactor {
 public:
  reactor::Input<std::int32_t> set_req{"set_req", this};
  reactor::Output<std::int32_t> set_res{"set_res", this};
  reactor::Input<std::int32_t> add_req{"add_req", this};
  reactor::Output<std::int32_t> add_res{"add_res", this};
  reactor::Input<reactor::Empty> get_req{"get_req", this};
  reactor::Output<std::int32_t> get_res{"get_res", this};

  explicit CounterLogic(reactor::Environment& environment)
      : Reactor("counter_logic", environment) {
    add_reaction("on_set",
                 [this] {
                   value_ = set_req.get();
                   set_res.set(value_);
                 })
        .triggered_by(set_req)
        .writes(set_res);
    add_reaction("on_add",
                 [this] {
                   value_ += add_req.get();
                   add_res.set(value_);
                 })
        .triggered_by(add_req)
        .writes(add_res);
    add_reaction("on_get", [this] { get_res.set(value_); })
        .triggered_by(get_req)
        .writes(get_res);
  }

 private:
  std::int32_t value_{0};
};

/// The deterministic client: issues the three calls at successive logical
/// tags and records the printed result.
class DearClient final : public reactor::Reactor {
 public:
  reactor::Output<std::int32_t> set_out{"set_out", this};
  reactor::Output<std::int32_t> add_out{"add_out", this};
  reactor::Output<reactor::Empty> get_out{"get_out", this};
  reactor::Input<std::int32_t> printed_in{"printed_in", this};

  DearClient(reactor::Environment& environment, Duration spacing,
             std::function<void(std::int32_t)> on_printed)
      : Reactor("client", environment), on_printed_(std::move(on_printed)) {
    add_reaction("on_startup",
                 [this, spacing] {
                   do_set_.schedule(reactor::Empty{});
                   do_add_.schedule(reactor::Empty{}, spacing);
                   do_get_.schedule(reactor::Empty{}, 2 * spacing);
                 })
        .triggered_by(startup_);
    add_reaction("do_set", [this] { set_out.set(1); }).triggered_by(do_set_).writes(set_out);
    add_reaction("do_add", [this] { add_out.set(2); }).triggered_by(do_add_).writes(add_out);
    add_reaction("do_get", [this] { get_out.set(reactor::Empty{}); })
        .triggered_by(do_get_)
        .writes(get_out);
    add_reaction("on_printed", [this] { on_printed_(printed_in.get()); })
        .triggered_by(printed_in);
  }

 private:
  reactor::StartupTrigger startup_{"startup", this};
  reactor::LogicalAction<reactor::Empty> do_set_{"do_set", this};
  reactor::LogicalAction<reactor::Empty> do_add_{"do_add", this};
  reactor::LogicalAction<reactor::Empty> do_get_{"do_get", this};
  std::function<void(std::int32_t)> on_printed_;
};

/// Everything both DEAR variants share once clock/network/executor exist.
struct DearFig1World {
  DearFig1World(reactor::PhysicalClock& clock, net::Network& network,
                common::Executor& executor, someip::ServiceDiscovery& discovery,
                Duration spacing, std::function<void(std::int32_t)> on_printed,
                transact::TransactorConfig tc = default_transactor_config())
      : server_rt(network, discovery, executor, kServerEp, 0x41),
        client_rt(network, discovery, executor, kClientEp, 0x42),
        server_env(clock, env_config()),
        client_env(clock, env_config()),
        logic(server_env),
        server_side("counter_server", server_env, server_rt, kCounterInstance, tc) {
    server_env.connect(server_side.tx(Counter::set).request, logic.set_req);
    server_env.connect(logic.set_res, server_side.tx(Counter::set).response);
    server_env.connect(server_side.tx(Counter::add).request, logic.add_req);
    server_env.connect(logic.add_res, server_side.tx(Counter::add).response);
    server_env.connect(server_side.tx(Counter::get).request, logic.get_req);
    server_env.connect(logic.get_res, server_side.tx(Counter::get).response);

    client = std::make_unique<DearClient>(client_env, spacing, std::move(on_printed));
    client_side = std::make_unique<dear::ClientSide<Counter>>("counter_client", client_env,
                                                              client_rt, kCounterInstance, tc);
    client_env.connect(client->set_out, client_side->tx(Counter::set).request);
    client_env.connect(client->add_out, client_side->tx(Counter::add).request);
    client_env.connect(client->get_out, client_side->tx(Counter::get).request);
    client_env.connect(client_side->tx(Counter::get).response, client->printed_in);
  }

  [[nodiscard]] static reactor::Environment::Config env_config() {
    reactor::Environment::Config config;
    config.keepalive = true;
    return config;
  }

  [[nodiscard]] static transact::TransactorConfig default_transactor_config() {
    transact::TransactorConfig tc;
    tc.deadline = 2 * kMillisecond;
    tc.latency_bound = 5 * kMillisecond;
    tc.clock_error_bound = 0;
    return tc;
  }

  [[nodiscard]] std::uint64_t protocol_errors() const {
    return server_side.total_errors() + client_side->total_errors();
  }

  ara::Runtime server_rt;
  ara::Runtime client_rt;
  reactor::Environment server_env;
  reactor::Environment client_env;
  CounterLogic logic;
  /// Skeleton + server method transactors, derived from the descriptor
  /// (offered on construction — before the client side resolves it).
  dear::ServerSide<Counter> server_side;
  std::unique_ptr<DearClient> client;
  std::unique_ptr<dear::ClientSide<Counter>> client_side;
};

}  // namespace

Fig1Outcome run_fig1_dear_sim(std::uint64_t seed) {
  common::Rng rng(seed);
  sim::Kernel kernel;
  net::SimNetwork network(kernel, rng.stream("net"));
  someip::ServiceDiscovery discovery;
  sim::SimExecutor executor(kernel, rng.stream("dispatch"));
  reactor::SimClock clock(kernel);

  Fig1Outcome outcome;
  DearFig1World world(clock, network, executor, discovery, kMillisecond,
                      [&outcome](std::int32_t printed) {
                        outcome.printed = printed;
                        outcome.completed = true;
                      });

  reactor::SimDriver server_driver(world.server_env, kernel, rng.stream("cost.server"));
  reactor::SimDriver client_driver(world.client_env, kernel, rng.stream("cost.client"));
  server_driver.start();
  client_driver.start();

  kernel.run_until(kSecond);
  outcome.protocol_errors = world.protocol_errors();
#ifdef DEAR_FIG1_DEBUG
  const auto dump = [](const char* name, const transact::Transactor& t) {
    std::fprintf(stderr, "%s: sent=%llu released=%llu tardy=%llu untagged=%llu dropped=%llu dl=%llu remote=%llu\n",
                 name, (unsigned long long)t.messages_sent(), (unsigned long long)t.messages_released(),
                 (unsigned long long)t.tardy_messages(), (unsigned long long)t.untagged_messages(),
                 (unsigned long long)t.dropped_messages(), (unsigned long long)t.deadline_violations(),
                 (unsigned long long)t.remote_errors());
  };
  dump("set_client", world.client_side->tx(Counter::set));
  dump("add_client", world.client_side->tx(Counter::add));
  dump("get_client", world.client_side->tx(Counter::get));
  dump("set_server", world.server_side.tx(Counter::set));
  dump("add_server", world.server_side.tx(Counter::add));
  dump("get_server", world.server_side.tx(Counter::get));
#endif
  return outcome;
}

Fig1Outcome run_fig1_dear_threaded(std::size_t workers, Duration call_spacing) {
  common::ThreadPoolExecutor pool(workers);
  net::RtNetwork network(pool);
  someip::ServiceDiscovery discovery;
  reactor::RealClock clock;

  Fig1Outcome outcome;
  std::atomic<bool> printed_flag{false};
  std::function<void()> shutdown_all;
  // Real-time execution on a possibly loaded machine: use bounds generous
  // enough that OS preemption does not cause spurious deadline misses.
  transact::TransactorConfig tc;
  tc.deadline = 10 * kMillisecond;
  tc.latency_bound = 20 * kMillisecond;
  DearFig1World world(clock, network, pool, discovery, call_spacing,
                      [&](std::int32_t printed) {
                        outcome.printed = printed;
                        outcome.completed = true;
                        printed_flag.store(true);
                        shutdown_all();
                      },
                      tc);
  shutdown_all = [&world] {
    world.client_env.request_shutdown();
    world.server_env.request_shutdown();
  };

  std::thread server_thread([&world] { world.server_env.run(); });
  // The client's first tagged call must not race the server environment's
  // startup: a message whose release tag precedes the server's start tag
  // would be tardy. Wait until the server scheduler is live.
  for (int i = 0; i < 2000 && !world.server_env.scheduler().running(); ++i) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  std::thread client_thread([&world] { world.client_env.run(); });

  // Safety net in case of protocol errors: force shutdown after 2 s.
  std::thread watchdog([&] {
    for (int i = 0; i < 200 && !printed_flag.load(); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    world.client_env.request_shutdown();
    world.server_env.request_shutdown();
  });

  client_thread.join();
  server_thread.join();
  watchdog.join();
  outcome.protocol_errors = world.protocol_errors();
  return outcome;
}

}  // namespace dear::demo
