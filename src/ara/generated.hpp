// Descriptor-derived proxy and skeleton classes.
//
// The paper's "generated" proxy/skeleton classes (paper §II.A) are derived
// here from a compile-time ServiceInterface descriptor instead of being
// written by hand: Proxy<I> and Skeleton<I> instantiate one typed part
// (ProxyEvent/ProxyMethod/ProxyField resp. SkeletonEvent/SkeletonMethod/
// SkeletonField) per member of I's descriptor, with the SOME/IP ids taken
// from the descriptor types. Members are accessed through the descriptor
// constants themselves:
//
//   ara::Skeleton<VideoAdapter> skeleton(runtime, kInstance);
//   skeleton.get(VideoAdapter::frame).Send(frame);
//
//   ara::Proxy<VideoAdapter> proxy(runtime, kInstance, server);
//   proxy.get(VideoAdapter::frame).Subscribe();
//
// get() resolves at compile time (meta::index_of is consteval) and returns
// the exact typed part — the generated classes add zero overhead over the
// handwritten subclassing style, which remains supported for legacy code
// (see bench_binding_backends for the measurement).
#pragma once

#include <optional>
#include <stdexcept>
#include <string>

#include "ara/event.hpp"
#include "ara/field.hpp"
#include "ara/meta/service_interface.hpp"
#include "ara/method.hpp"
#include "ara/proxy.hpp"
#include "ara/skeleton.hpp"

namespace dear::ara {

namespace detail {

// Maps a member descriptor to its proxy-side part. Each part derives from
// the classic typed template so get() hands back the familiar API.

template <typename M>
struct ProxyPart;  // primary template intentionally undefined

template <typename T, someip::EventId Id>
struct ProxyPart<meta::Event<T, Id>> : ProxyEvent<T> {
  ProxyPart(const meta::Event<T, Id>&, ServiceProxy& owner) : ProxyEvent<T>(owner, Id) {}
};

template <typename Req, typename Res, someip::MethodId Id>
struct ProxyPart<meta::Method<Req, Res, Id>> : ProxyMethod<Res, Req> {
  ProxyPart(const meta::Method<Req, Res, Id>&, ServiceProxy& owner)
      : ProxyMethod<Res, Req>(owner, Id) {}
};

template <typename T, someip::MethodId G, someip::MethodId S, someip::EventId N>
struct ProxyPart<meta::Field<T, G, S, N>> : ProxyField<T> {
  ProxyPart(const meta::Field<T, G, S, N>&, ServiceProxy& owner)
      : ProxyField<T>(owner, FieldIds{G, S, N}) {}
};

// Skeleton-side parts.

template <typename M>
struct SkeletonPart;  // primary template intentionally undefined

template <typename T, someip::EventId Id>
struct SkeletonPart<meta::Event<T, Id>> : SkeletonEvent<T> {
  SkeletonPart(const meta::Event<T, Id>&, ServiceSkeleton& owner) : SkeletonEvent<T>(owner, Id) {}
};

template <typename Req, typename Res, someip::MethodId Id>
struct SkeletonPart<meta::Method<Req, Res, Id>> : SkeletonMethod<Res, Req> {
  SkeletonPart(const meta::Method<Req, Res, Id>&, ServiceSkeleton& owner)
      : SkeletonMethod<Res, Req>(owner, Id) {}
};

template <typename T, someip::MethodId G, someip::MethodId S, someip::EventId N>
struct SkeletonPart<meta::Field<T, G, S, N>> : SkeletonField<T> {
  SkeletonPart(const meta::Field<T, G, S, N>&, ServiceSkeleton& owner)
      : SkeletonField<T>(owner, FieldIds{G, S, N}) {}
};

}  // namespace detail

/// Proxy generated from a ServiceInterface descriptor.
template <meta::ServiceDescriptor I>
class Proxy : public ServiceProxy {
 public:
  using Interface = I;

  /// Binds to a resolved server endpoint; the service id comes from the
  /// descriptor, only the instance is a deployment choice.
  Proxy(Runtime& runtime, someip::InstanceId instance, net::Endpoint server)
      : ServiceProxy(runtime, {I::kInterface.service, instance}, server),
        parts_(static_cast<ServiceProxy&>(*this)) {}

  /// InstanceIdentifier overload for ServiceProxy::find compatibility; the
  /// identifier's service id must match the descriptor's.
  Proxy(Runtime& runtime, InstanceIdentifier instance, net::Endpoint server)
      : Proxy(runtime, require_service(instance), server) {}

  /// Resolves the instance via service discovery, or nullopt when the
  /// service is not offered.
  [[nodiscard]] static std::optional<Proxy> find(Runtime& runtime, someip::InstanceId instance) {
    return ServiceProxy::find<Proxy>(runtime, {I::kInterface.service, instance});
  }

  /// The typed part for a member: ProxyEvent, ProxyMethod or ProxyField.
  template <typename M>
  [[nodiscard]] auto& get(const M&) noexcept {
    return parts_.template at<meta::index_of<I, M>()>();
  }
  template <typename M>
  [[nodiscard]] const auto& get(const M&) const noexcept {
    return parts_.template at<meta::index_of<I, M>()>();
  }

 private:
  static someip::InstanceId require_service(InstanceIdentifier instance) {
    if (instance.service != I::kInterface.service) {
      throw std::logic_error("Proxy<" + std::string(I::kInterface.name) +
                             ">: instance identifier names a different service (" +
                             instance.to_string() + ")");
    }
    return instance.instance;
  }

  meta::MemberParts<I, detail::ProxyPart> parts_;
};

/// Skeleton generated from a ServiceInterface descriptor.
template <meta::ServiceDescriptor I>
class Skeleton : public ServiceSkeleton {
 public:
  using Interface = I;

  Skeleton(Runtime& runtime, someip::InstanceId instance,
           MethodCallProcessingMode mode = MethodCallProcessingMode::kEvent)
      : ServiceSkeleton(runtime, {I::kInterface.service, instance}, mode),
        parts_(static_cast<ServiceSkeleton&>(*this)) {}

  /// The typed part for a member: SkeletonEvent, SkeletonMethod or
  /// SkeletonField.
  template <typename M>
  [[nodiscard]] auto& get(const M&) noexcept {
    return parts_.template at<meta::index_of<I, M>()>();
  }
  template <typename M>
  [[nodiscard]] const auto& get(const M&) const noexcept {
    return parts_.template at<meta::index_of<I, M>()>();
  }

 private:
  meta::MemberParts<I, detail::SkeletonPart> parts_;
};

}  // namespace dear::ara
