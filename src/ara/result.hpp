// ara::core::Result-style value-or-error type (C++20 has no std::expected).
#pragma once

#include <cassert>
#include <utility>
#include <variant>

#include "ara/types.hpp"

namespace dear::ara {

template <typename T>
class Result {
 public:
  Result(T value) : storage_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(ComErrc error) : storage_(error) {        // NOLINT(google-explicit-constructor)
    assert(error != ComErrc::kOk && "use a value for success results");
  }

  [[nodiscard]] bool has_value() const noexcept { return std::holds_alternative<T>(storage_); }
  explicit operator bool() const noexcept { return has_value(); }

  [[nodiscard]] const T& value() const& {
    assert(has_value());
    return std::get<T>(storage_);
  }
  [[nodiscard]] T& value() & {
    assert(has_value());
    return std::get<T>(storage_);
  }
  [[nodiscard]] T&& value() && {
    assert(has_value());
    return std::get<T>(std::move(storage_));
  }

  [[nodiscard]] ComErrc error() const noexcept {
    return has_value() ? ComErrc::kOk : std::get<ComErrc>(storage_);
  }

  /// Returns the value or `fallback` on error.
  [[nodiscard]] T value_or(T fallback) const& { return has_value() ? value() : fallback; }

 private:
  std::variant<T, ComErrc> storage_;
};

}  // namespace dear::ara
