#include "ara/skeleton.hpp"

namespace dear::ara {

ServiceSkeleton::ServiceSkeleton(Runtime& runtime, InstanceIdentifier instance,
                                 MethodCallProcessingMode mode)
    : runtime_(runtime), instance_(instance), mode_(mode),
      binding_(runtime.binding_for(instance)) {
  if (mode_ == MethodCallProcessingMode::kEventSingleThread) {
    strand_ = std::make_unique<common::SerialExecutor>(runtime_.dispatcher());
  }
}

ServiceSkeleton::~ServiceSkeleton() {
  StopOfferService();
  if (binding_ != nullptr) {
    for (const someip::MethodId method : registered_methods_) {
      binding_->remove_method(instance_.service, method);
    }
  }
}

void ServiceSkeleton::OfferService() {
  if (offered_ || binding_ == nullptr) {
    return;
  }
  offered_ = true;
  runtime_.discovery().offer({instance_.service, instance_.instance}, binding_->endpoint());
}

void ServiceSkeleton::StopOfferService() {
  if (!offered_) {
    return;
  }
  offered_ = false;
  runtime_.discovery().stop_offer({instance_.service, instance_.instance});
}

void ServiceSkeleton::register_method(
    someip::MethodId method,
    std::function<void(const someip::Message&, const net::Endpoint&)> processor) {
  if (binding_ == nullptr) {
    return;  // transport-less instance: calls can never arrive
  }
  registered_methods_.push_back(method);
  binding_->provide_method(instance_.service, method, std::move(processor));
}

void ServiceSkeleton::dispatch(std::function<void()> work) {
  // User handlers are mutually exclusive per instance — "the server
  // implementation enforces mutual exclusion between the execution of
  // method invocations" (paper §I).
  auto guarded = [this, work = std::move(work)] {
    const std::lock_guard<std::mutex> lock(handler_mutex_);
    work();
  };
  switch (mode_) {
    case MethodCallProcessingMode::kEvent:
      runtime_.dispatcher().post(std::move(guarded));
      break;
    case MethodCallProcessingMode::kEventSingleThread:
      strand_->post(std::move(guarded));
      break;
    case MethodCallProcessingMode::kPoll: {
      const std::lock_guard<std::mutex> lock(poll_mutex_);
      poll_queue_.push_back(std::move(guarded));
      break;
    }
  }
}

bool ServiceSkeleton::ProcessNextMethodCall() {
  std::function<void()> work;
  {
    const std::lock_guard<std::mutex> lock(poll_mutex_);
    if (poll_queue_.empty()) {
      return false;
    }
    work = std::move(poll_queue_.front());
    poll_queue_.pop_front();
  }
  work();
  return true;
}

std::size_t ServiceSkeleton::pending_method_calls() const {
  const std::lock_guard<std::mutex> lock(poll_mutex_);
  return poll_queue_.size();
}

}  // namespace dear::ara
