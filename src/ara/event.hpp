// Typed service events.
//
// "Events are one-way messages that the server initiates and the client
// handles" (paper §II.A). SkeletonEvent::Send serializes the sample and
// notifies every subscriber; ProxyEvent delivers decoded samples to the
// registered receive handler on the binding's receive path.
// Events typed as common::LoanedBuffer ride the sensor data plane: Send
// forwards the handle through notify_loaned (no serialization), and the
// proxy hands subscribers the slab the producer published — over the local
// transport the very same storage, over SOME/IP a slab rehydrated from the
// wire bytes.
#pragma once

#include <cstring>
#include <functional>
#include <type_traits>
#include <utility>

#include "ara/proxy.hpp"
#include "ara/skeleton.hpp"
#include "common/buffer_pool.hpp"
#include "someip/serialization.hpp"

namespace dear::ara {

template <typename T>
class SkeletonEvent {
 public:
  SkeletonEvent(ServiceSkeleton& skeleton, someip::EventId event)
      : skeleton_(skeleton), event_(event) {}

  /// Sends one sample to all current subscribers. No-op on a
  /// transport-less skeleton.
  void Send(const T& sample) {
    com::TransportBinding* binding = skeleton_.binding();
    if (binding == nullptr) {
      return;
    }
    if constexpr (std::is_same_v<T, common::LoanedBuffer>) {
      binding->notify_loaned(skeleton_.instance().service, event_, sample);
    } else {
      binding->notify(skeleton_.instance().service, event_, someip::encode_payload(sample));
    }
  }

  [[nodiscard]] std::size_t subscriber_count() const {
    com::TransportBinding* binding = skeleton_.binding();
    return binding == nullptr
               ? 0
               : binding->subscriber_count(skeleton_.instance().service, event_);
  }

  [[nodiscard]] someip::EventId id() const noexcept { return event_; }

 private:
  ServiceSkeleton& skeleton_;
  someip::EventId event_;
};

template <typename T>
class ProxyEvent {
 public:
  using ReceiveHandler = std::function<void(const T&)>;

  ProxyEvent(ServiceProxy& proxy, someip::EventId event) : proxy_(proxy), event_(event) {}

  ~ProxyEvent() {
    if (subscribed_) {
      Unsubscribe();
    }
  }

  /// Registers the handler invoked for every incoming sample. Must be set
  /// before Subscribe(). The handler is dispatched onto the runtime's
  /// dispatcher (as ara::com event receive handlers are), so its
  /// invocation time — and the relative order of handlers for different
  /// events — is up to the scheduler.
  void SetReceiveHandler(ReceiveHandler handler) {
    handler_ = std::move(handler);
    immediate_ = false;
  }

  /// Registers a handler that runs synchronously on the binding's receive
  /// path. Needed by the DEAR client event transactor, which must observe
  /// the timestamp bypass while the notification is current (paper
  /// Figure 3). The handler must be cheap and thread-safe.
  void SetImmediateReceiveHandler(ReceiveHandler handler) {
    handler_ = std::move(handler);
    immediate_ = true;
  }

  /// No-op on a transport-less proxy (subscribed() stays false).
  void Subscribe() {
    com::TransportBinding* binding = proxy_.binding();
    if (binding == nullptr) {
      return;
    }
    subscribed_ = true;
    binding->subscribe(
        proxy_.server(), proxy_.instance().service, event_,
        [this](const someip::Message& message) {
          T sample{};
          if constexpr (std::is_same_v<T, common::LoanedBuffer>) {
            if (message.loaned) {
              sample = message.loaned;  // local transport: retain the producer's slab
            } else {
              // Wire transport: the payload arrived as bytes; rehydrate a
              // slab so the subscriber sees the same type either way. The
              // copy is the wire's, not the data plane's — counted so the
              // zero-copy gate can prove the local path never takes it.
              sample = common::BufferPool::instance().loan(message.payload.size());
              if (!message.payload.empty()) {
                obs::count_always(obs::Counter::kDataplanePayloadCopies);
                std::memcpy(sample.data(), message.payload.data(), message.payload.size());
              }
              sample.publish(message.payload.size());
            }
          } else {
            if (!someip::decode_payload(message.payload, sample)) {
              return;  // malformed notification; drop
            }
          }
          if (!handler_) {
            return;
          }
          if (immediate_) {
            handler_(sample);
          } else {
            proxy_.runtime().dispatcher().post(
                [this, sample = std::move(sample)] { handler_(sample); });
          }
        });
  }

  void Unsubscribe() {
    com::TransportBinding* binding = proxy_.binding();
    subscribed_ = false;
    if (binding == nullptr) {
      return;
    }
    binding->unsubscribe(proxy_.server(), proxy_.instance().service, event_);
  }

  [[nodiscard]] bool subscribed() const noexcept { return subscribed_; }
  [[nodiscard]] someip::EventId id() const noexcept { return event_; }

 private:
  ServiceProxy& proxy_;
  someip::EventId event_;
  ReceiveHandler handler_;
  bool subscribed_{false};
  bool immediate_{false};
};

}  // namespace dear::ara
