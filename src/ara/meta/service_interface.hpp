// Compile-time ServiceInterface descriptors — the generator-input
// replacement.
//
// The paper treats proxy and skeleton classes as *generated* artifacts of a
// ServiceInterface description (paper §II.A). This header provides the
// in-language equivalent of that description: a constexpr descriptor that
// names a service (id + version) and its typed members, from which the
// rest of the stack derives everything that used to be written by hand —
//
//   * ara::Proxy<I> / ara::Skeleton<I>      (ara/generated.hpp)
//   * dear::ClientSide<I> / ServerSide<I>   (dear/bundles.hpp)
//   * AppBuilder deployments                (dear/app_builder.hpp)
//
// A service is declared once, in ~10 lines:
//
//   struct VideoAdapter {
//     static constexpr ara::meta::Event<VideoFrame, 0x8001> frame{"frame"};
//     static constexpr auto kInterface =
//         ara::meta::service_interface("VideoAdapter", 0x1001, {1, 0}, frame);
//   };
//
// SOME/IP ids live in the member descriptor *types* (not just the values),
// so member lookup — proxy.get(VideoAdapter::frame) — resolves at compile
// time with no table or string search. The service_interface() factory is
// consteval and rejects malformed interfaces (id-space violations,
// duplicate ids) at compile time.
#pragma once

#include <cstdint>
#include <tuple>
#include <type_traits>
#include <utility>

#include "someip/types.hpp"

namespace dear::ara {

/// Ids used by a field: get/set are plain methods, notify is an event.
/// (Also consumed by the classic handwritten API in ara/field.hpp.)
struct FieldIds {
  someip::MethodId get;
  someip::MethodId set;
  someip::EventId notify;
};

namespace meta {

/// Major/minor interface version (SOME/IP service versioning).
struct Version {
  std::uint8_t major{1};
  std::uint8_t minor{0};
};

// --- member descriptors ---------------------------------------------------------
//
// Each member kind carries its payload type(s) and SOME/IP id(s) as
// template parameters; the only runtime state is the member's name. Two
// members of one interface therefore never share a descriptor type, which
// is what makes get(I::member) a pure type-level lookup.

/// One-way server→client notification carrying samples of T.
template <typename T, someip::EventId Id>
struct Event {
  using value_type = T;
  static constexpr someip::EventId id = Id;
  const char* name;
};

/// Request/response method. Methods with several parameters are modeled
/// with a single request struct, exactly as generated proxy code would
/// bundle them (and as the DEAR method transactors require).
template <typename Req, typename Res, someip::MethodId Id>
struct Method {
  using request_type = Req;
  using response_type = Res;
  static constexpr someip::MethodId id = Id;
  const char* name;
};

/// Server-side state variable: get method + set method + change event.
template <typename T, someip::MethodId GetId, someip::MethodId SetId, someip::EventId NotifyId>
struct Field {
  using value_type = T;
  static constexpr someip::MethodId get_id = GetId;
  static constexpr someip::MethodId set_id = SetId;
  static constexpr someip::EventId notify_id = NotifyId;
  static constexpr FieldIds ids{GetId, SetId, NotifyId};
  const char* name;
};

// --- member kind traits ---------------------------------------------------------

template <typename M>
inline constexpr bool is_event_member = false;
template <typename T, someip::EventId Id>
inline constexpr bool is_event_member<Event<T, Id>> = true;

template <typename M>
inline constexpr bool is_method_member = false;
template <typename Req, typename Res, someip::MethodId Id>
inline constexpr bool is_method_member<Method<Req, Res, Id>> = true;

template <typename M>
inline constexpr bool is_field_member = false;
template <typename T, someip::MethodId G, someip::MethodId S, someip::EventId N>
inline constexpr bool is_field_member<Field<T, G, S, N>> = true;

template <typename M>
inline constexpr bool is_member_descriptor =
    is_event_member<M> || is_method_member<M> || is_field_member<M>;

// --- the interface descriptor ---------------------------------------------------

template <typename... Members>
struct ServiceInterface {
  static constexpr std::size_t member_count = sizeof...(Members);
  using members_tuple = std::tuple<Members...>;

  const char* name;
  someip::ServiceId service;
  Version version;
  members_tuple members;
};

namespace detail {

/// Compile-time id bookkeeping for validation. Each check `throw`s on
/// violation: inside the consteval factory this is never executed at
/// runtime, it simply makes the constant evaluation fail with the message
/// visible in the compiler diagnostic.
template <std::size_t N>
struct IdChecker {
  someip::MethodId ids[N > 0 ? N : 1]{};
  std::size_t count{0};

  constexpr void add(someip::MethodId id) {
    for (std::size_t i = 0; i < count; ++i) {
      if (ids[i] == id) {
        throw "service interface declares the same SOME/IP id twice";
      }
    }
    ids[count++] = id;
  }

  template <typename M>
  constexpr void check(const M&) {
    if constexpr (is_event_member<M>) {
      if (!someip::is_event_id(M::id)) {
        throw "event ids must set the 0x8000 flag (SOME/IP notification id space)";
      }
      add(M::id);
    } else if constexpr (is_method_member<M>) {
      if (someip::is_event_id(M::id)) {
        throw "method ids must be below 0x8000 (SOME/IP method id space)";
      }
      add(M::id);
    } else {
      static_assert(is_field_member<M>, "unknown member descriptor kind");
      if (someip::is_event_id(M::get_id) || someip::is_event_id(M::set_id)) {
        throw "field get/set ids must be below 0x8000 (they are methods)";
      }
      if (!someip::is_event_id(M::notify_id)) {
        throw "field notify ids must set the 0x8000 flag (they are events)";
      }
      add(M::get_id);
      add(M::set_id);
      add(M::notify_id);
    }
  }
};

}  // namespace detail

/// Builds a validated ServiceInterface. Evaluated at compile time only; a
/// malformed interface fails to compile with the violated rule in the
/// diagnostic.
template <typename... Members>
[[nodiscard]] consteval ServiceInterface<Members...> service_interface(const char* name,
                                                                       someip::ServiceId service,
                                                                       Version version,
                                                                       Members... members) {
  static_assert((is_member_descriptor<Members> && ...),
                "service_interface members must be ara::meta::Event/Method/Field descriptors");
  if (service == 0) {
    throw "service id must be non-zero";
  }
  detail::IdChecker<3 * sizeof...(Members)> checker;
  (checker.check(members), ...);
  return ServiceInterface<Members...>{name, service, version,
                                      std::tuple<Members...>{members...}};
}

// --- end-to-end latency budgets -------------------------------------------------
//
// A service may declare how long a sample is allowed to take from the
// chain's sensor boundary to the member that emits it — the paper's
// end-to-end latency requirement, attached to the interface description
// the way a generator would carry it as meta-data. The static timing
// analyzer (src/analysis/timing.hpp) sums the per-hop logical latencies
// (D + L + E) along every source→sink chain and checks them against this
// budget (rule DEAR-LAT-001). Budgets are nanosecond counts so this
// header stays free of the runtime time library.

/// One declared budget: "samples emitted on `member` arrive within
/// `budget_ns` of the chain's sensor tag".
struct EndToEndBudget {
  const char* member;
  std::int64_t budget_ns;
};

/// Detects `static constexpr auto kEndToEndBudgets = std::array{...}` on a
/// descriptor type. Budgets are optional; interfaces without them simply
/// produce no DEAR-LAT-001 findings.
template <typename I, typename = void>
inline constexpr bool has_end_to_end_budgets = false;
template <typename I>
inline constexpr bool has_end_to_end_budgets<I, std::void_t<decltype(I::kEndToEndBudgets)>> =
    true;

// --- descriptor concept + member lookup -----------------------------------------

template <typename T>
inline constexpr bool is_service_interface = false;
template <typename... Members>
inline constexpr bool is_service_interface<ServiceInterface<Members...>> = true;

/// A type usable as the Interface parameter of Proxy<I>/Skeleton<I>/
/// ClientSide<I>/ServerSide<I>: it exposes the descriptor as a static
/// constexpr `kInterface`.
template <typename I>
concept ServiceDescriptor =
    is_service_interface<std::remove_cvref_t<decltype(I::kInterface)>>;

template <ServiceDescriptor I>
using members_tuple_t = typename std::remove_cvref_t<decltype(I::kInterface)>::members_tuple;

template <ServiceDescriptor I>
inline constexpr std::size_t member_count = std::tuple_size_v<members_tuple_t<I>>;

template <ServiceDescriptor I, std::size_t Index>
using member_t = std::tuple_element_t<Index, members_tuple_t<I>>;

/// Index of member descriptor type M within I's member list. Fails the
/// compilation when M is not a member of I.
template <ServiceDescriptor I, typename M>
[[nodiscard]] consteval std::size_t index_of() {
  constexpr std::size_t n = member_count<I>;
  std::size_t found = n;
  [&]<std::size_t... Is>(std::index_sequence<Is...>) {
    (((std::is_same_v<member_t<I, Is>, std::remove_cvref_t<M>>) ? (found = Is) : found), ...);
  }(std::make_index_sequence<n>{});
  if (found == n) {
    throw "the requested member is not part of this service interface";
  }
  return found;
}

// --- generic member-wise part storage -------------------------------------------
//
// Derived classes (generated proxies/skeletons, DEAR transactor bundles)
// all need the same thing: one sub-object per interface member, chosen by
// member kind, constructed *in place* (the ara typed parts register
// handlers capturing `this`, so they must never be moved). MemberParts
// builds that storage by inheriting one box per member; each box's part is
// constructed with (member_descriptor, shared ctor args...).

namespace detail {

template <typename Part, std::size_t Index>
struct PartBox {
  Part part;
  template <typename... Args>
  explicit constexpr PartBox(Args&&... args) : part(std::forward<Args>(args)...) {}
};

template <ServiceDescriptor I, template <typename> class PartFor, typename Seq>
struct MemberPartsImpl;

template <ServiceDescriptor I, template <typename> class PartFor, std::size_t... Is>
struct MemberPartsImpl<I, PartFor, std::index_sequence<Is...>>
    : PartBox<PartFor<member_t<I, Is>>, Is>... {
  /// Shared construction arguments are passed by lvalue reference to every
  /// part constructor, preceded by the member's descriptor value.
  template <typename... Args>
  explicit MemberPartsImpl(Args&... args)
      : PartBox<PartFor<member_t<I, Is>>, Is>(std::get<Is>(I::kInterface.members), args...)... {}

  template <std::size_t Index>
  [[nodiscard]] auto& at() noexcept {
    return static_cast<PartBox<PartFor<member_t<I, Index>>, Index>&>(*this).part;
  }
  template <std::size_t Index>
  [[nodiscard]] const auto& at() const noexcept {
    return static_cast<const PartBox<PartFor<member_t<I, Index>>, Index>&>(*this).part;
  }

  /// Invokes f(part) for every member part, in declaration order.
  template <typename F>
  void for_each(F&& f) {
    (f(static_cast<PartBox<PartFor<member_t<I, Is>>, Is>&>(*this).part), ...);
  }
  template <typename F>
  void for_each(F&& f) const {
    (f(static_cast<const PartBox<PartFor<member_t<I, Is>>, Is>&>(*this).part), ...);
  }
};

}  // namespace detail

template <ServiceDescriptor I, template <typename> class PartFor>
using MemberParts =
    detail::MemberPartsImpl<I, PartFor, std::make_index_sequence<member_count<I>>>;

}  // namespace meta
}  // namespace dear::ara
