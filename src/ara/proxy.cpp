#include "ara/proxy.hpp"

namespace dear::ara {

ServiceProxy::ServiceProxy(Runtime& runtime, InstanceIdentifier instance, net::Endpoint server)
    : runtime_(runtime),
      instance_(instance),
      server_(server),
      binding_(runtime.binding_for(instance)) {}

}  // namespace dear::ara
