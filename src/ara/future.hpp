// ara::core::Future / ara::core::Promise.
//
// Service method implementations return a Future; the skeleton sends the
// response message "as soon as the corresponding promise is fulfilled"
// (paper §II.A). Unlike std::future, this Future supports continuations
// (then), which the runtime uses to chain the response transmission — and
// which sim-mode code must use instead of blocking waits (the DES runs on
// one thread).
#pragma once

#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "ara/result.hpp"

namespace dear::ara {

namespace detail {

template <typename T>
class SharedState {
 public:
  void set(Result<T> result) {
    std::vector<std::function<void(const Result<T>&)>> continuations;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (result_.has_value()) {
        return;  // already satisfied; ignore double set
      }
      result_.emplace(std::move(result));
      continuations.swap(continuations_);
    }
    cv_.notify_all();
    for (auto& continuation : continuations) {
      continuation(*result_);
    }
  }

  [[nodiscard]] bool ready() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return result_.has_value();
  }

  [[nodiscard]] const Result<T>& wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return result_.has_value(); });
    return *result_;
  }

  template <typename Rep, typename Period>
  [[nodiscard]] bool wait_for(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock<std::mutex> lock(mutex_);
    return cv_.wait_for(lock, timeout, [this] { return result_.has_value(); });
  }

  /// Runs `fn` with the result: immediately if ready, otherwise when set.
  void on_ready(std::function<void(const Result<T>&)> fn) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (!result_.has_value()) {
        continuations_.push_back(std::move(fn));
        return;
      }
    }
    fn(*result_);
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::optional<Result<T>> result_;
  std::vector<std::function<void(const Result<T>&)>> continuations_;
};

}  // namespace detail

template <typename T>
class Future {
 public:
  Future() = default;
  explicit Future(std::shared_ptr<detail::SharedState<T>> state) : state_(std::move(state)) {}

  [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }
  [[nodiscard]] bool is_ready() const { return state_ && state_->ready(); }

  /// Blocks until the result is available (real-threads mode only).
  [[nodiscard]] Result<T> GetResult() const { return state_->wait(); }

  /// Blocks and returns the value; on error returns a default-constructed T.
  /// Prefer GetResult() where errors matter.
  [[nodiscard]] T get() const {
    const Result<T>& result = state_->wait();
    return result.has_value() ? result.value() : T{};
  }

  template <typename Rep, typename Period>
  [[nodiscard]] bool wait_for(std::chrono::duration<Rep, Period> timeout) const {
    return state_->wait_for(timeout);
  }

  /// Continuation; `fn(result)` runs on the thread that fulfills the
  /// promise (or inline when already ready).
  void then(std::function<void(const Result<T>&)> fn) const { state_->on_ready(std::move(fn)); }

 private:
  std::shared_ptr<detail::SharedState<T>> state_;
};

template <typename T>
class Promise {
 public:
  Promise() : state_(std::make_shared<detail::SharedState<T>>()) {}

  [[nodiscard]] Future<T> get_future() const { return Future<T>(state_); }

  void set_value(T value) { state_->set(Result<T>(std::move(value))); }
  void SetError(ComErrc error) { state_->set(Result<T>(error)); }

 private:
  std::shared_ptr<detail::SharedState<T>> state_;
};

/// Convenience: an already-resolved future.
template <typename T>
[[nodiscard]] Future<T> make_ready_future(T value) {
  Promise<T> promise;
  promise.set_value(std::move(value));
  return promise.get_future();
}

}  // namespace dear::ara
