#include "ara/runtime.hpp"

#include <stdexcept>
#include <string>

#include "ara/com/someip_binding.hpp"

namespace dear::ara {

Runtime::Runtime(net::Network& network, someip::ServiceDiscovery& discovery,
                 common::Executor& dispatcher, net::Endpoint self, someip::ClientId client_id)
    : discovery_(discovery),
      dispatcher_(dispatcher),
      default_binding_(&registry_.attach(
          com::BackendKind::kSomeIp,
          std::make_unique<com::SomeIpBinding>(network, dispatcher, self, client_id))) {
  deployment_.default_backend = com::BackendKind::kSomeIp;
}

Runtime::Runtime(someip::ServiceDiscovery& discovery, common::Executor& dispatcher,
                 com::BackendKind kind, std::unique_ptr<com::TransportBinding> backend)
    : discovery_(discovery),
      dispatcher_(dispatcher),
      default_binding_(&registry_.attach(kind, std::move(backend))) {
  deployment_.default_backend = kind;
}

com::TransportBinding& Runtime::attach_backend(com::BackendKind kind,
                                               std::unique_ptr<com::TransportBinding> backend) {
  com::TransportBinding& attached = registry_.attach(kind, std::move(backend));
  if (kind == deployment_.default_backend) {
    default_binding_ = &attached;
  }
  return attached;
}

void Runtime::deploy(InstanceIdentifier instance, com::BackendKind kind) {
  deployment_.instance_backends[instance] = kind;
}

void Runtime::set_deployment(com::DeploymentConfig deployment) {
  com::TransportBinding* binding = registry_.find(deployment.default_backend);
  if (binding == nullptr) {
    // binding() must never be null and must agree with deployment();
    // surface the misconfiguration instead of masking it.
    throw std::logic_error(std::string("Runtime: deployment default backend '") +
                           com::to_string(deployment.default_backend) + "' is not attached");
  }
  default_binding_ = binding;
  deployment_ = std::move(deployment);
}

com::TransportBinding* Runtime::binding_for(InstanceIdentifier instance) noexcept {
  return registry_.find(deployment_.backend_for(instance));
}

std::optional<net::Endpoint> Runtime::resolve(InstanceIdentifier id) const {
  return discovery_.find({id.service, id.instance});
}

someip::WatchId Runtime::start_find_service(InstanceIdentifier id,
                                            someip::ServiceDiscovery::Watcher watcher) {
  return discovery_.watch({id.service, id.instance}, dispatcher_, std::move(watcher));
}

void Runtime::stop_find_service(someip::WatchId watch_id) { discovery_.unwatch(watch_id); }

}  // namespace dear::ara
