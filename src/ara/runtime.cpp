#include "ara/runtime.hpp"

namespace dear::ara {

Runtime::Runtime(net::Network& network, someip::ServiceDiscovery& discovery,
                 common::Executor& dispatcher, net::Endpoint self, someip::ClientId client_id)
    : discovery_(discovery), dispatcher_(dispatcher), binding_(network, dispatcher, self, client_id) {}

std::optional<net::Endpoint> Runtime::resolve(InstanceIdentifier id) const {
  return discovery_.find({id.service, id.instance});
}

someip::WatchId Runtime::start_find_service(InstanceIdentifier id,
                                            someip::ServiceDiscovery::Watcher watcher) {
  return discovery_.watch({id.service, id.instance}, dispatcher_, std::move(watcher));
}

void Runtime::stop_find_service(someip::WatchId watch_id) { discovery_.unwatch(watch_id); }

}  // namespace dear::ara
