// Per-process ara::com runtime.
//
// Each SWC "can be considered a full program as it is mapped to a process
// on the target platform" (paper §II.A). One Runtime instance models that
// process: it owns the process's SOME/IP binding, talks to service
// discovery, and provides the dispatch executor onto which incoming method
// calls and event handlers are scheduled.
#pragma once

#include <memory>
#include <optional>

#include "common/executor.hpp"
#include "net/network.hpp"
#include "someip/binding.hpp"
#include "someip/service_discovery.hpp"
#include "ara/types.hpp"

namespace dear::ara {

class Runtime {
 public:
  Runtime(net::Network& network, someip::ServiceDiscovery& discovery,
          common::Executor& dispatcher, net::Endpoint self, someip::ClientId client_id);

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// One-shot service lookup (ara::com FindService).
  [[nodiscard]] std::optional<net::Endpoint> resolve(InstanceIdentifier id) const;

  /// Continuous lookup (ara::com StartFindService); the handler runs on the
  /// dispatch executor.
  someip::WatchId start_find_service(InstanceIdentifier id,
                                     someip::ServiceDiscovery::Watcher watcher);

  void stop_find_service(someip::WatchId watch_id);

  [[nodiscard]] someip::Binding& binding() noexcept { return binding_; }
  [[nodiscard]] someip::ServiceDiscovery& discovery() noexcept { return discovery_; }
  [[nodiscard]] common::Executor& dispatcher() noexcept { return dispatcher_; }
  [[nodiscard]] net::Endpoint endpoint() const noexcept { return binding_.endpoint(); }

 private:
  someip::ServiceDiscovery& discovery_;
  common::Executor& dispatcher_;
  someip::Binding binding_;
};

}  // namespace dear::ara
