// Per-process ara::com runtime.
//
// Each SWC "can be considered a full program as it is mapped to a process
// on the target platform" (paper §II.A). One Runtime instance models that
// process: it owns the process's transport backends (a BindingRegistry of
// TransportBinding implementations), talks to service discovery, carries
// the deployment config that selects a backend per service instance, and
// provides the dispatch executor onto which incoming method calls and
// event handlers are scheduled.
#pragma once

#include <memory>
#include <optional>

#include "ara/com/binding_registry.hpp"
#include "ara/com/transport_binding.hpp"
#include "common/executor.hpp"
#include "net/network.hpp"
#include "someip/service_discovery.hpp"
#include "ara/types.hpp"

namespace dear::ara {

class Runtime {
 public:
  /// Networked runtime: constructs a SOME/IP backend bound to `self` and
  /// makes it the default deployment.
  Runtime(net::Network& network, someip::ServiceDiscovery& discovery,
          common::Executor& dispatcher, net::Endpoint self, someip::ClientId client_id);

  /// Bring-your-own-backend runtime: `backend` is attached as `kind` and
  /// becomes the default deployment (e.g. a LocalBinding for a pure
  /// in-process topology).
  Runtime(someip::ServiceDiscovery& discovery, common::Executor& dispatcher,
          com::BackendKind kind, std::unique_ptr<com::TransportBinding> backend);

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  // --- deployment -----------------------------------------------------------

  /// Attaches an additional backend; returns it. Attach backends before
  /// constructing the proxies/skeletons that use them; a kind can be
  /// attached only once (std::logic_error otherwise — existing proxies
  /// hold raw pointers into the registry).
  com::TransportBinding& attach_backend(com::BackendKind kind,
                                        std::unique_ptr<com::TransportBinding> backend);

  /// Routes `instance` over `kind` for this process.
  void deploy(InstanceIdentifier instance, com::BackendKind kind);

  /// Replaces the whole deployment config (default + per-instance map).
  /// Throws std::logic_error when the new default backend is not attached.
  void set_deployment(com::DeploymentConfig deployment);

  [[nodiscard]] const com::DeploymentConfig& deployment() const noexcept { return deployment_; }
  [[nodiscard]] com::BindingRegistry& registry() noexcept { return registry_; }

  /// The backend deployed for `instance`, or nullptr when the configured
  /// kind has no attached backend (surfaced by the typed layer as
  /// ComErrc::kNetworkBindingFailure).
  [[nodiscard]] com::TransportBinding* binding_for(InstanceIdentifier instance) noexcept;

  /// The default-deployment backend (never null).
  [[nodiscard]] com::TransportBinding& binding() noexcept { return *default_binding_; }

  /// Installs (or clears, with nullptr) the deterministic fault-injection
  /// plan on every attached backend; the plan must outlive the process's
  /// bindings. See ft/fault_model.hpp.
  void set_fault_plan(const ft::FaultPlan* plan) {
    registry_.for_each([plan](com::TransportBinding& binding) { binding.set_fault_plan(plan); });
  }

  // --- service discovery ----------------------------------------------------

  /// One-shot service lookup (ara::com FindService).
  [[nodiscard]] std::optional<net::Endpoint> resolve(InstanceIdentifier id) const;

  /// Continuous lookup (ara::com StartFindService); the handler runs on the
  /// dispatch executor.
  someip::WatchId start_find_service(InstanceIdentifier id,
                                     someip::ServiceDiscovery::Watcher watcher);

  void stop_find_service(someip::WatchId watch_id);

  [[nodiscard]] someip::ServiceDiscovery& discovery() noexcept { return discovery_; }
  [[nodiscard]] common::Executor& dispatcher() noexcept { return dispatcher_; }
  [[nodiscard]] net::Endpoint endpoint() const noexcept { return default_binding_->endpoint(); }

 private:
  someip::ServiceDiscovery& discovery_;
  common::Executor& dispatcher_;
  com::BindingRegistry registry_;
  com::DeploymentConfig deployment_;
  com::TransportBinding* default_binding_;  // owned by registry_, never null
};

}  // namespace dear::ara
