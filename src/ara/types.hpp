// ara::com-style core types.
#pragma once

#include <cstdint>
#include <string>

#include "someip/types.hpp"

namespace dear::ara {

/// Communication error codes (subset of ara::com::ComErrc / ara::core).
enum class ComErrc : std::uint8_t {
  kOk = 0,
  kServiceNotAvailable,
  kNetworkBindingFailure,
  kCommunicationTimeout,
  kMalformedResponse,
  kRemoteError,
  kPromiseBroken,
  kFieldValueNotSet,
};

[[nodiscard]] constexpr const char* to_string(ComErrc error) noexcept {
  switch (error) {
    case ComErrc::kOk:
      return "kOk";
    case ComErrc::kServiceNotAvailable:
      return "kServiceNotAvailable";
    case ComErrc::kNetworkBindingFailure:
      return "kNetworkBindingFailure";
    case ComErrc::kCommunicationTimeout:
      return "kCommunicationTimeout";
    case ComErrc::kMalformedResponse:
      return "kMalformedResponse";
    case ComErrc::kRemoteError:
      return "kRemoteError";
    case ComErrc::kPromiseBroken:
      return "kPromiseBroken";
    case ComErrc::kFieldValueNotSet:
      return "kFieldValueNotSet";
  }
  return "?";
}

/// Maps a transport-level return code onto the ara::com error domain. The
/// mapping is intentionally coarse (matching the observable behavior of
/// ara::com): a synthesized timeout becomes kCommunicationTimeout, success
/// stays kOk, and every other failure the *server* reported is a remote
/// error. Transport-less instances are reported separately as
/// kNetworkBindingFailure by the proxy layer.
[[nodiscard]] constexpr ComErrc to_com_error(someip::ReturnCode code) noexcept {
  switch (code) {
    case someip::ReturnCode::kOk:
      return ComErrc::kOk;
    case someip::ReturnCode::kTimeout:
      return ComErrc::kCommunicationTimeout;
    default:
      return ComErrc::kRemoteError;
  }
}

/// Identifies a service instance (ara::com InstanceIdentifier).
struct InstanceIdentifier {
  someip::ServiceId service{0};
  someip::InstanceId instance{0};

  auto operator<=>(const InstanceIdentifier&) const = default;

  [[nodiscard]] std::string to_string() const {
    return "service:" + std::to_string(service) + "/instance:" + std::to_string(instance);
  }
};

/// How a skeleton processes incoming method calls (ara::com
/// MethodCallProcessingMode).
enum class MethodCallProcessingMode : std::uint8_t {
  /// Calls are queued; the application drains them with
  /// ProcessNextMethodCall().
  kPoll,
  /// Every call is dispatched as its own task — with a multi-worker
  /// executor this means "the runtime maps each invocation to a different
  /// thread" (paper §I), the default and the nondeterministic mode.
  kEvent,
  /// Calls are dispatched through a FIFO strand: one at a time, in arrival
  /// order.
  kEventSingleThread,
};

}  // namespace dear::ara
