// Typed service methods.
//
// SkeletonMethod decodes arguments, routes the call through the skeleton's
// processing mode, invokes the user handler (which returns a Future), and
// transmits the response when the promise is fulfilled. ProxyMethod
// serializes arguments, issues the request and resolves the returned
// Future from the response message — non-blocking, exactly the call style
// of Figure 1.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <tuple>
#include <utility>
#include <vector>

#include "ara/future.hpp"
#include "ara/proxy.hpp"
#include "ara/skeleton.hpp"
#include "someip/serialization.hpp"

namespace dear::ara {

template <typename Res, typename... Args>
class SkeletonMethod {
 public:
  using Handler = std::function<Future<Res>(const Args&...)>;

  SkeletonMethod(ServiceSkeleton& skeleton, someip::MethodId method)
      : skeleton_(skeleton), method_(method) {
    skeleton_.register_method(method_,
                              [this](const someip::Message& request, const net::Endpoint& from) {
                                on_request(request, from);
                              });
  }

  /// Asynchronous handler returning a Future.
  void set_handler(Handler handler) { handler_ = std::move(handler); }

  /// Like set_handler, but the handler runs synchronously on the binding's
  /// receive path instead of going through the skeleton's processing mode.
  /// This is the "interrupt" semantics the DEAR server transactors need:
  /// the handler must observe the timestamp bypass while the received
  /// message is still current (paper Figure 3, steps 9-10). The handler
  /// must be cheap and thread-safe.
  void set_immediate_handler(Handler handler) {
    handler_ = std::move(handler);
    immediate_ = true;
  }

  /// Convenience wrapper for synchronous handlers.
  void set_sync_handler(std::function<Res(const Args&...)> handler) {
    handler_ = [handler = std::move(handler)](const Args&... args) {
      return make_ready_future<Res>(handler(args...));
    };
  }

  [[nodiscard]] someip::MethodId id() const noexcept { return method_; }

 private:
  void on_request(const someip::Message& request, const net::Endpoint& from) {
    // Registration implies an attached transport (register_method no-ops
    // on transport-less skeletons), so the binding is non-null here.
    com::TransportBinding& binding = *skeleton_.binding();
    std::tuple<std::decay_t<Args>...> arguments;
    const bool ok = std::apply(
        [&request](auto&... unpacked) {
          return someip::decode_payload(request.payload, unpacked...);
        },
        arguments);
    if (!ok) {
      binding.respond(request, from, {}, someip::ReturnCode::kMalformedMessage);
      return;
    }
    // Copy the request header; the dispatch may outlive the receive path.
    auto invoke = [this, &binding, request, from, arguments = std::move(arguments)] {
      if (!handler_) {
        binding.respond(request, from, {}, someip::ReturnCode::kUnknownMethod);
        return;
      }
      Future<Res> future = std::apply(handler_, arguments);
      // "As soon as the corresponding promise is fulfilled, the server
      // sends a message back to the client" (paper §II.A).
      future.then([&binding, request, from](const Result<Res>& result) {
        if (result.has_value()) {
          binding.respond(request, from, someip::encode_payload(result.value()));
        } else {
          binding.respond(request, from, {}, someip::ReturnCode::kNotOk);
        }
      });
    };
    if (immediate_) {
      invoke();  // receive-path ("interrupt") semantics for DEAR transactors
    } else {
      skeleton_.dispatch(std::move(invoke));
    }
  }

  ServiceSkeleton& skeleton_;
  someip::MethodId method_;
  Handler handler_;
  bool immediate_{false};
};

template <typename Res, typename... Args>
class ProxyMethod {
 public:
  ProxyMethod(ServiceProxy& proxy, someip::MethodId method) : proxy_(proxy), method_(method) {}

  /// Invokes the remote method; returns immediately with a Future. On a
  /// transport-less proxy the future resolves to kNetworkBindingFailure.
  /// When the proxy carries a retry policy, failed attempts (timeout or
  /// server error) are re-issued up to the budget with the original wire
  /// tag advanced by the deterministic linear backoff; a budget burned
  /// entirely on timeouts resolves to ComErrc::kServiceNotAvailable.
  [[nodiscard]] Future<Res> operator()(const Args&... args) {
    Promise<Res> promise;
    Future<Res> future = promise.get_future();
    com::TransportBinding* binding = proxy_.binding();
    if (binding == nullptr) {
      promise.SetError(ComErrc::kNetworkBindingFailure);
      return future;
    }
    if (!proxy_.retry_policy().enabled()) {
      binding->call(
          proxy_.server(), proxy_.instance().service, method_, someip::encode_payload(args...),
          [promise](const someip::Message& response) mutable {
            if (response.type == someip::MessageType::kError ||
                response.return_code != someip::ReturnCode::kOk) {
              const ComErrc error = to_com_error(response.return_code);
              promise.SetError(error == ComErrc::kOk ? ComErrc::kRemoteError : error);
              return;
            }
            std::decay_t<Res> value{};
            if (!someip::decode_payload(response.payload, value)) {
              promise.SetError(ComErrc::kMalformedResponse);
              return;
            }
            promise.set_value(std::move(value));
          },
          proxy_.call_timeout());
      return future;
    }
    issue_with_retry(*binding, std::move(promise), someip::encode_payload(args...));
    return future;
  }

  [[nodiscard]] someip::MethodId id() const noexcept { return method_; }

 private:
  /// Per-call retry state. The binding's response handler holds the
  /// shared_ptr (keeping the state alive exactly as long as a response is
  /// pending); `issue` captures only a weak_ptr so a call abandoned at
  /// teardown cannot keep itself alive through a reference cycle.
  struct CallState {
    std::uint32_t attempt{1};
    std::optional<someip::WireTag> armed;
    std::vector<std::uint8_t> payload;
    std::function<void()> issue;
  };

  void issue_with_retry(com::TransportBinding& binding, Promise<Res> promise,
                        std::vector<std::uint8_t> payload) {
    auto state = std::make_shared<CallState>();
    state->payload = std::move(payload);
    // Record the tag the transactor armed for this call so a retry can
    // re-arm it, advanced by the backoff (nullopt for untagged callers).
    state->armed = binding.peek_send_tag();
    state->issue = [this, &binding, promise = std::move(promise),
                    weak = std::weak_ptr<CallState>(state)]() mutable {
      const std::shared_ptr<CallState> st = weak.lock();
      if (!st) {
        return;
      }
      const ft::RetryBudget& budget = proxy_.retry_policy();
      if (st->attempt > 1 && st->armed.has_value()) {
        someip::WireTag tag = *st->armed;
        tag.time += static_cast<Duration>(st->attempt - 1) * budget.backoff_base;
        binding.attach_send_tag(tag);
      }
      binding.call(
          proxy_.server(), proxy_.instance().service, method_, st->payload,
          [this, promise, st](const someip::Message& response) mutable {
            const ft::RetryBudget& budget = proxy_.retry_policy();
            if (response.type == someip::MessageType::kError ||
                response.return_code != someip::ReturnCode::kOk) {
              const bool retryable = response.return_code == someip::ReturnCode::kTimeout ||
                                     response.return_code == someip::ReturnCode::kNotOk;
              if (retryable && st->attempt < budget.max_attempts) {
                ++st->attempt;
                proxy_.note_retry();
                st->issue();
                return;
              }
              ComErrc error = to_com_error(response.return_code);
              if (response.return_code == someip::ReturnCode::kTimeout &&
                  budget.max_attempts > 1) {
                // The whole budget burned on timeouts: the service is
                // gone, not merely slow.
                error = ComErrc::kServiceNotAvailable;
                proxy_.note_retry_exhausted();
              }
              promise.SetError(error == ComErrc::kOk ? ComErrc::kRemoteError : error);
              return;
            }
            std::decay_t<Res> value{};
            if (!someip::decode_payload(response.payload, value)) {
              promise.SetError(ComErrc::kMalformedResponse);
              return;
            }
            promise.set_value(std::move(value));
          },
          budget.timeout > 0 ? budget.timeout : proxy_.call_timeout());
    };
    state->issue();
  }

  ServiceProxy& proxy_;
  someip::MethodId method_;
};

}  // namespace dear::ara
