// Typed service methods.
//
// SkeletonMethod decodes arguments, routes the call through the skeleton's
// processing mode, invokes the user handler (which returns a Future), and
// transmits the response when the promise is fulfilled. ProxyMethod
// serializes arguments, issues the request and resolves the returned
// Future from the response message — non-blocking, exactly the call style
// of Figure 1.
#pragma once

#include <functional>
#include <tuple>
#include <utility>

#include "ara/future.hpp"
#include "ara/proxy.hpp"
#include "ara/skeleton.hpp"
#include "someip/serialization.hpp"

namespace dear::ara {

template <typename Res, typename... Args>
class SkeletonMethod {
 public:
  using Handler = std::function<Future<Res>(const Args&...)>;

  SkeletonMethod(ServiceSkeleton& skeleton, someip::MethodId method)
      : skeleton_(skeleton), method_(method) {
    skeleton_.register_method(method_,
                              [this](const someip::Message& request, const net::Endpoint& from) {
                                on_request(request, from);
                              });
  }

  /// Asynchronous handler returning a Future.
  void set_handler(Handler handler) { handler_ = std::move(handler); }

  /// Like set_handler, but the handler runs synchronously on the binding's
  /// receive path instead of going through the skeleton's processing mode.
  /// This is the "interrupt" semantics the DEAR server transactors need:
  /// the handler must observe the timestamp bypass while the received
  /// message is still current (paper Figure 3, steps 9-10). The handler
  /// must be cheap and thread-safe.
  void set_immediate_handler(Handler handler) {
    handler_ = std::move(handler);
    immediate_ = true;
  }

  /// Convenience wrapper for synchronous handlers.
  void set_sync_handler(std::function<Res(const Args&...)> handler) {
    handler_ = [handler = std::move(handler)](const Args&... args) {
      return make_ready_future<Res>(handler(args...));
    };
  }

  [[nodiscard]] someip::MethodId id() const noexcept { return method_; }

 private:
  void on_request(const someip::Message& request, const net::Endpoint& from) {
    // Registration implies an attached transport (register_method no-ops
    // on transport-less skeletons), so the binding is non-null here.
    com::TransportBinding& binding = *skeleton_.binding();
    std::tuple<std::decay_t<Args>...> arguments;
    const bool ok = std::apply(
        [&request](auto&... unpacked) {
          return someip::decode_payload(request.payload, unpacked...);
        },
        arguments);
    if (!ok) {
      binding.respond(request, from, {}, someip::ReturnCode::kMalformedMessage);
      return;
    }
    // Copy the request header; the dispatch may outlive the receive path.
    auto invoke = [this, &binding, request, from, arguments = std::move(arguments)] {
      if (!handler_) {
        binding.respond(request, from, {}, someip::ReturnCode::kUnknownMethod);
        return;
      }
      Future<Res> future = std::apply(handler_, arguments);
      // "As soon as the corresponding promise is fulfilled, the server
      // sends a message back to the client" (paper §II.A).
      future.then([&binding, request, from](const Result<Res>& result) {
        if (result.has_value()) {
          binding.respond(request, from, someip::encode_payload(result.value()));
        } else {
          binding.respond(request, from, {}, someip::ReturnCode::kNotOk);
        }
      });
    };
    if (immediate_) {
      invoke();  // receive-path ("interrupt") semantics for DEAR transactors
    } else {
      skeleton_.dispatch(std::move(invoke));
    }
  }

  ServiceSkeleton& skeleton_;
  someip::MethodId method_;
  Handler handler_;
  bool immediate_{false};
};

template <typename Res, typename... Args>
class ProxyMethod {
 public:
  ProxyMethod(ServiceProxy& proxy, someip::MethodId method) : proxy_(proxy), method_(method) {}

  /// Invokes the remote method; returns immediately with a Future. On a
  /// transport-less proxy the future resolves to kNetworkBindingFailure.
  [[nodiscard]] Future<Res> operator()(const Args&... args) {
    Promise<Res> promise;
    Future<Res> future = promise.get_future();
    com::TransportBinding* binding = proxy_.binding();
    if (binding == nullptr) {
      promise.SetError(ComErrc::kNetworkBindingFailure);
      return future;
    }
    binding->call(
        proxy_.server(), proxy_.instance().service, method_, someip::encode_payload(args...),
        [promise](const someip::Message& response) mutable {
          if (response.type == someip::MessageType::kError ||
              response.return_code != someip::ReturnCode::kOk) {
            const ComErrc error = to_com_error(response.return_code);
            promise.SetError(error == ComErrc::kOk ? ComErrc::kRemoteError : error);
            return;
          }
          std::decay_t<Res> value{};
          if (!someip::decode_payload(response.payload, value)) {
            promise.SetError(ComErrc::kMalformedResponse);
            return;
          }
          promise.set_value(std::move(value));
        },
        proxy_.call_timeout());
    return future;
  }

  [[nodiscard]] someip::MethodId id() const noexcept { return method_; }

 private:
  ServiceProxy& proxy_;
  someip::MethodId method_;
};

}  // namespace dear::ara
