// Service skeleton base.
//
// "A skeleton is an abstract interface that a server needs to implement in
// order to provide a service" (paper §II.A). Generated service code is
// modeled by subclassing ServiceSkeleton and declaring SkeletonMethod /
// SkeletonEvent / SkeletonField members (see method.hpp, event.hpp,
// field.hpp).
//
// Incoming calls are dispatched according to MethodCallProcessingMode:
//   kEvent            — one task per call on the runtime's dispatch
//                       executor; with multiple workers the OS scheduler
//                       picks the order (paper Figure 1's nondeterminism).
//                       User handlers are mutually exclusive per instance,
//                       as the paper's server does.
//   kEventSingleThread — FIFO strand: arrival order, one at a time.
//   kPoll              — queued until ProcessNextMethodCall().
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>

#include "common/serial_executor.hpp"
#include "ara/runtime.hpp"
#include "ara/types.hpp"

namespace dear::ara {

class ServiceSkeleton {
 public:
  ServiceSkeleton(Runtime& runtime, InstanceIdentifier instance,
                  MethodCallProcessingMode mode = MethodCallProcessingMode::kEvent);
  virtual ~ServiceSkeleton();

  ServiceSkeleton(const ServiceSkeleton&) = delete;
  ServiceSkeleton& operator=(const ServiceSkeleton&) = delete;

  /// Announces the service instance via service discovery.
  void OfferService();
  void StopOfferService();

  /// kPoll mode: runs the oldest queued method call on the caller's
  /// thread. Returns false when no call was pending.
  bool ProcessNextMethodCall();

  [[nodiscard]] std::size_t pending_method_calls() const;

  [[nodiscard]] Runtime& runtime() noexcept { return runtime_; }
  [[nodiscard]] InstanceIdentifier instance() const noexcept { return instance_; }
  [[nodiscard]] MethodCallProcessingMode processing_mode() const noexcept { return mode_; }
  [[nodiscard]] bool offered() const noexcept { return offered_; }

  /// The transport this skeleton was deployed onto, or nullptr when the
  /// configured backend is not attached (the instance then cannot be
  /// offered and registers no methods).
  [[nodiscard]] com::TransportBinding* binding() noexcept { return binding_; }
  [[nodiscard]] bool has_binding() const noexcept { return binding_ != nullptr; }

  // --- internal API used by SkeletonMethod/Event/Field ----------------------

  /// Registers a raw request processor for a method id. No-op on a
  /// transport-less skeleton.
  void register_method(someip::MethodId method,
                       std::function<void(const someip::Message&, const net::Endpoint&)> processor);

  /// Routes `work` through the configured processing mode. User handler
  /// execution is mutually exclusive per skeleton instance.
  void dispatch(std::function<void()> work);

 private:
  Runtime& runtime_;
  InstanceIdentifier instance_;
  MethodCallProcessingMode mode_;
  com::TransportBinding* binding_;
  bool offered_{false};
  std::unique_ptr<common::SerialExecutor> strand_;

  std::mutex handler_mutex_;  // mutual exclusion between user handlers

  mutable std::mutex poll_mutex_;
  std::deque<std::function<void()>> poll_queue_;

  std::vector<someip::MethodId> registered_methods_;
};

}  // namespace dear::ara
