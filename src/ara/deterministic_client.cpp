#include "ara/deterministic_client.hpp"

namespace dear::ara {

DeterministicClient::DeterministicClient(Config config) : config_(config) {}

ActivationReturnType DeterministicClient::WaitForActivation(TimePoint activation_time) {
  activation_time_ = activation_time;
  switch (phase_) {
    case Phase::kStartup0:
      phase_ = Phase::kStartup1;
      return ActivationReturnType::kRegisterServices;
    case Phase::kStartup1:
      phase_ = Phase::kStartup2;
      return ActivationReturnType::kServiceDiscovery;
    case Phase::kStartup2:
      phase_ = Phase::kRunning;
      return ActivationReturnType::kInit;
    case Phase::kRunning:
      break;
    case Phase::kDone:
      return ActivationReturnType::kTerminate;
  }
  if (terminate_requested_) {
    phase_ = Phase::kDone;
    return ActivationReturnType::kTerminate;
  }
  ++cycle_;
  // Deterministic per-cycle random stream: depends only on seed and cycle
  // index, never on timing.
  std::uint64_t mix = config_.seed;
  mix ^= 0x9e3779b97f4a7c15ULL * cycle_;
  cycle_rng_.reseed(common::splitmix64(mix));
  return ActivationReturnType::kRun;
}

std::uint64_t DeterministicClient::GetRandom() { return cycle_rng_(); }

}  // namespace dear::ara
