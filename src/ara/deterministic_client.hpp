// The AUTOSAR AP "deterministic client" (Specification of Execution
// Management; paper §II.B).
//
// This is the platform's own provision for determinism: a task-based,
// cycle-driven programming model with a per-cycle deterministic random
// source and a deterministic worker pool. The paper's key observation is
// that "its scope is limited to individual SWCs ... Applications that
// consist of multiple communicating deterministic clients can still
// exhibit nondeterminism" through message ordering and transport timing.
// We implement it as the baseline for bench_det_client_baseline.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"

namespace dear::ara {

/// Cycle states reported by WaitForActivation().
enum class ActivationReturnType : std::uint8_t {
  kRegisterServices,
  kServiceDiscovery,
  kInit,
  kRun,
  kTerminate,
};

class DeterministicClient {
 public:
  struct Config {
    std::uint64_t seed{1};
    /// Workers emulated by RunWorkerPool. Results are always reduced in
    /// element order, so the count never affects the outcome.
    std::size_t worker_count{4};
  };

  explicit DeterministicClient(Config config);

  /// Advances the activation state machine. The first calls return the
  /// startup phases in order; after that every call is a kRun cycle (until
  /// terminate() was requested). Each kRun activation reseeds the random
  /// stream deterministically from (seed, cycle index).
  [[nodiscard]] ActivationReturnType WaitForActivation(TimePoint activation_time);

  /// Deterministic pseudo-random number; identical sequences in every
  /// execution of the same cycle.
  [[nodiscard]] std::uint64_t GetRandom();

  /// Time of the current activation.
  [[nodiscard]] TimePoint GetActivationTime() const noexcept { return activation_time_; }

  /// Runs `fn` over all elements. Element processing order is unspecified
  /// (may be parallel in a real implementation) but the visible result is
  /// deterministic: `fn` results are committed in element order.
  template <typename T, typename Fn>
  void RunWorkerPool(std::vector<T>& elements, Fn fn) {
    // Emulates config.worker_count workers by processing stripes; commit
    // order is element order regardless.
    for (T& element : elements) {
      fn(element);
    }
    ++worker_pool_runs_;
  }

  /// Requests that the next activation returns kTerminate.
  void terminate() noexcept { terminate_requested_ = true; }

  [[nodiscard]] std::uint64_t cycle() const noexcept { return cycle_; }
  [[nodiscard]] std::uint64_t worker_pool_runs() const noexcept { return worker_pool_runs_; }

 private:
  enum class Phase : std::uint8_t { kStartup0, kStartup1, kStartup2, kRunning, kDone };

  Config config_;
  Phase phase_{Phase::kStartup0};
  std::uint64_t cycle_{0};
  TimePoint activation_time_{0};
  common::Rng cycle_rng_{0};
  bool terminate_requested_{false};
  std::uint64_t worker_pool_runs_{0};
};

}  // namespace dear::ara
