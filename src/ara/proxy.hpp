// Service proxy base.
//
// "A proxy is an object that a client receives when requesting a service"
// (paper §II.A). Generated proxy code is modeled by subclassing
// ServiceProxy and declaring ProxyMethod / ProxyEvent / ProxyField members.
#pragma once

#include <optional>

#include "ara/runtime.hpp"
#include "ara/types.hpp"

namespace dear::ara {

class ServiceProxy {
 public:
  /// Binds to a resolved server endpoint (obtained via Runtime::resolve or
  /// start_find_service).
  ServiceProxy(Runtime& runtime, InstanceIdentifier instance, net::Endpoint server);
  virtual ~ServiceProxy() = default;

  ServiceProxy(const ServiceProxy&) = delete;
  ServiceProxy& operator=(const ServiceProxy&) = delete;

  /// Convenience factory: resolves the instance and constructs the proxy
  /// subclass, or returns nullopt when the service is not offered.
  template <typename P>
  [[nodiscard]] static std::optional<P> find(Runtime& runtime, InstanceIdentifier instance) {
    const std::optional<net::Endpoint> endpoint = runtime.resolve(instance);
    if (!endpoint.has_value()) {
      return std::nullopt;
    }
    return std::optional<P>(std::in_place, runtime, instance, *endpoint);
  }

  [[nodiscard]] Runtime& runtime() noexcept { return runtime_; }
  [[nodiscard]] InstanceIdentifier instance() const noexcept { return instance_; }
  [[nodiscard]] net::Endpoint server() const noexcept { return server_; }

  /// Response deadline for method calls made through this proxy; 0 disables
  /// the timeout.
  void set_call_timeout(Duration timeout) noexcept { call_timeout_ = timeout; }
  [[nodiscard]] Duration call_timeout() const noexcept { return call_timeout_; }

 private:
  Runtime& runtime_;
  InstanceIdentifier instance_;
  net::Endpoint server_;
  Duration call_timeout_{0};
};

}  // namespace dear::ara
