// Service proxy base.
//
// "A proxy is an object that a client receives when requesting a service"
// (paper §II.A). Generated proxy code is modeled by subclassing
// ServiceProxy and declaring ProxyMethod / ProxyEvent / ProxyField members.
//
// The transport is resolved once, at construction, through the runtime's
// deployment config: a proxy for an instance deployed over SOME/IP talks
// to the SOME/IP backend, one for a co-located instance to the local
// backend. When the configured backend is not attached, the proxy is
// transport-less: method calls resolve to ComErrc::kNetworkBindingFailure
// and subscriptions are inert.
#pragma once

#include <cstdint>
#include <optional>

#include "ara/runtime.hpp"
#include "ara/types.hpp"
#include "ft/fault_model.hpp"
#include "obs/obs.hpp"

namespace dear::ara {

class ServiceProxy {
 public:
  /// Binds to a resolved server endpoint (obtained via Runtime::resolve or
  /// start_find_service).
  ServiceProxy(Runtime& runtime, InstanceIdentifier instance, net::Endpoint server);
  virtual ~ServiceProxy() = default;

  ServiceProxy(const ServiceProxy&) = delete;
  ServiceProxy& operator=(const ServiceProxy&) = delete;

  /// Convenience factory: resolves the instance and constructs the proxy
  /// subclass, or returns nullopt when the service is not offered.
  template <typename P>
  [[nodiscard]] static std::optional<P> find(Runtime& runtime, InstanceIdentifier instance) {
    const std::optional<net::Endpoint> endpoint = runtime.resolve(instance);
    if (!endpoint.has_value()) {
      return std::nullopt;
    }
    return std::optional<P>(std::in_place, runtime, instance, *endpoint);
  }

  [[nodiscard]] Runtime& runtime() noexcept { return runtime_; }
  [[nodiscard]] InstanceIdentifier instance() const noexcept { return instance_; }
  [[nodiscard]] net::Endpoint server() const noexcept { return server_; }

  /// The transport this proxy was deployed onto, or nullptr when the
  /// configured backend is not attached to the runtime.
  [[nodiscard]] com::TransportBinding* binding() noexcept { return binding_; }
  [[nodiscard]] bool has_binding() const noexcept { return binding_ != nullptr; }

  /// Response deadline for method calls made through this proxy; 0 disables
  /// the timeout.
  void set_call_timeout(Duration timeout) noexcept { call_timeout_ = timeout; }
  [[nodiscard]] Duration call_timeout() const noexcept { return call_timeout_; }

  /// Logical-time retry budget applied by this proxy's typed methods (and
  /// fields, which are methods on the wire). Disabled by default: a proxy
  /// without a policy behaves exactly as before the fault-tolerance
  /// subsystem existed. With a policy, each attempt runs under
  /// RetryBudget::timeout and a failed attempt is re-issued with the
  /// original wire tag advanced by the deterministic linear backoff.
  void set_retry_policy(ft::RetryBudget budget) noexcept { retry_ = budget; }
  [[nodiscard]] const ft::RetryBudget& retry_policy() const noexcept { return retry_; }

  /// Retry bookkeeping, recorded by the typed method wrappers.
  void note_retry() noexcept {
    ++retries_;
    obs::count(obs::Counter::kFtRetries);
  }
  void note_retry_exhausted() noexcept { ++retries_exhausted_; }
  [[nodiscard]] std::uint64_t retries() const noexcept { return retries_; }
  /// Calls whose whole budget burned on timeouts (reported as
  /// ComErrc::kServiceNotAvailable).
  [[nodiscard]] std::uint64_t retries_exhausted() const noexcept { return retries_exhausted_; }

 private:
  Runtime& runtime_;
  InstanceIdentifier instance_;
  net::Endpoint server_;
  com::TransportBinding* binding_;
  Duration call_timeout_{0};
  ft::RetryBudget retry_{};
  std::uint64_t retries_{0};
  std::uint64_t retries_exhausted_{0};
};

}  // namespace dear::ara
