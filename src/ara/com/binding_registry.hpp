// Backend selection for the ara::com runtime.
//
// A Runtime owns one backend per BackendKind in a BindingRegistry and a
// DeploymentConfig mapping service instances to kinds. Deployment is a
// per-process decision (which transport reaches a given instance from
// *here*), mirroring how AUTOSAR deployment manifests bind a required or
// provided service instance to a network binding. Proxies and skeletons
// resolve their transport once, at construction, via
// Runtime::binding_for(); an instance whose configured backend is not
// attached resolves to nothing, which the typed layer surfaces as
// ComErrc::kNetworkBindingFailure.
#pragma once

#include <cstdint>
#include <map>
#include <memory>

#include "ara/com/transport_binding.hpp"
#include "ara/types.hpp"

namespace dear::ara::com {

enum class BackendKind : std::uint8_t {
  /// SOME/IP over a datagram network (SomeIpBinding).
  kSomeIp = 0,
  /// Zero-copy intra-process transport (LocalBinding).
  kLocal = 1,
};

[[nodiscard]] constexpr const char* to_string(BackendKind kind) noexcept {
  switch (kind) {
    case BackendKind::kSomeIp:
      return "someip";
    case BackendKind::kLocal:
      return "local";
  }
  return "?";
}

/// Per-process transport selection: a default kind plus per-instance
/// overrides.
struct DeploymentConfig {
  BackendKind default_backend{BackendKind::kSomeIp};
  std::map<InstanceIdentifier, BackendKind> instance_backends;

  [[nodiscard]] BackendKind backend_for(const InstanceIdentifier& instance) const {
    const auto it = instance_backends.find(instance);
    return it == instance_backends.end() ? default_backend : it->second;
  }
};

/// Owns the attached backends, keyed by kind.
class BindingRegistry {
 public:
  BindingRegistry() = default;
  BindingRegistry(const BindingRegistry&) = delete;
  BindingRegistry& operator=(const BindingRegistry&) = delete;

  /// Attaches the backend for `kind`; returns it. Throws std::logic_error
  /// when `kind` already has a backend: proxies/skeletons hold raw
  /// pointers resolved at construction, so replacement would dangle them.
  TransportBinding& attach(BackendKind kind, std::unique_ptr<TransportBinding> binding);

  /// The backend for `kind`, or nullptr when none is attached.
  [[nodiscard]] TransportBinding* find(BackendKind kind) const noexcept;

  [[nodiscard]] bool has(BackendKind kind) const noexcept { return find(kind) != nullptr; }
  [[nodiscard]] std::size_t size() const noexcept { return backends_.size(); }

  /// Applies `fn` to every attached backend (process-wide configuration,
  /// e.g. installing a fault-injection plan).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& entry : backends_) {
      fn(*entry.second);
    }
  }

 private:
  std::map<BackendKind, std::unique_ptr<TransportBinding>> backends_;
};

}  // namespace dear::ara::com
