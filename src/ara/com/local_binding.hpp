// Zero-copy intra-process backend of the transport binding contract.
//
// For SWCs deployed into the same OS process there is no reason to pay for
// SOME/IP serialization and a (simulated or real) network hop: LocalBinding
// moves the someip::Message structure itself — payload vector and all —
// through a lock-free MPSC queue into the destination binding. Logical
// tags travel in-band on the message (Message::tag), so the DEAR bypass
// contract behaves exactly as over the wire, minus the 12-byte trailer
// codec.
//
// Routing is per-process: a LocalHub maps endpoints to bindings, playing
// the role the datagram network plays for the SOME/IP backend. Endpoint
// values are shared with service discovery, so a service can be offered at
// the same endpoint whether it is reached locally or over the network.
//
// Delivery is synchronous on the sender's thread: enqueue, then drain the
// destination's inbox. The drain is serialized per binding (same guarantee
// as the SOME/IP receive path, which makes the tag deposit→handler pairing
// race-free). A message sent from within a handler running on the same
// thread is queued and processed by the active drain loop instead of
// recursing, so request→response→request chains cannot deadlock.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "ara/com/transport_binding.hpp"
#include "common/executor.hpp"
#include "common/mpsc_queue.hpp"
#include "obs/obs.hpp"
#include "someip/timestamp_bypass.hpp"

namespace dear::ara::com {

class LocalBinding;

/// Endpoint → binding routing table for one process. Thread-safe. Bindings
/// attach on construction and detach on destruction; the hub must outlive
/// every binding attached to it.
class LocalHub {
 public:
  LocalHub() = default;
  LocalHub(const LocalHub&) = delete;
  LocalHub& operator=(const LocalHub&) = delete;

  /// Lifetime total flushes into the metrics registry at teardown (the
  /// hub outlives every binding, so this lands after their flushes).
  ~LocalHub() { obs::count(obs::Counter::kLocalUndeliverable, undeliverable_); }

  [[nodiscard]] LocalBinding* find(const net::Endpoint& endpoint) const;

  [[nodiscard]] std::size_t binding_count() const;
  /// Messages addressed to endpoints with no attached binding (mirrors the
  /// dropped-packet accounting of the datagram networks).
  [[nodiscard]] std::uint64_t undeliverable() const;

 private:
  friend class LocalBinding;

  void attach(LocalBinding* binding);
  void detach(const net::Endpoint& endpoint);
  void count_undeliverable();

  mutable std::mutex mutex_;
  std::unordered_map<net::Endpoint, LocalBinding*, net::EndpointHash> bindings_;
  std::uint64_t undeliverable_{0};
};

class LocalBinding final : public TransportBinding {
 public:
  /// The executor is used for timeout synthesis and for draining the inbox
  /// when two threads deliver concurrently; the binding must outlive any
  /// work queued on it. On the uncontended path delivery never leaves the
  /// sending thread.
  LocalBinding(LocalHub& hub, common::Executor& executor, net::Endpoint self,
               someip::ClientId client_id);
  ~LocalBinding() override;

  LocalBinding(const LocalBinding&) = delete;
  LocalBinding& operator=(const LocalBinding&) = delete;

  // --- TransportBinding ----------------------------------------------------

  someip::SessionId call(const net::Endpoint& server, someip::ServiceId service,
                         someip::MethodId method, std::vector<std::uint8_t> payload,
                         ResponseHandler on_response, Duration timeout) override;
  void call_no_return(const net::Endpoint& server, someip::ServiceId service,
                      someip::MethodId method, std::vector<std::uint8_t> payload) override;
  void subscribe(const net::Endpoint& server, someip::ServiceId service, someip::EventId event,
                 NotificationHandler handler) override;
  void unsubscribe(const net::Endpoint& server, someip::ServiceId service,
                   someip::EventId event) override;

  void provide_method(someip::ServiceId service, someip::MethodId method,
                      RequestHandler handler) override;
  void remove_method(someip::ServiceId service, someip::MethodId method) override;
  void respond(const someip::Message& request, const net::Endpoint& to,
               std::vector<std::uint8_t> payload, someip::ReturnCode return_code) override;
  void notify(someip::ServiceId service, someip::EventId event,
              std::vector<std::uint8_t> payload) override;
  /// Sensor data plane: every subscriber receives a handle to the same
  /// slab (copy = refcount retain) — zero encode, zero payload memcpy,
  /// and zero allocations on the steady-state path.
  void notify_loaned(someip::ServiceId service, someip::EventId event,
                     common::LoanedBuffer payload) override;
  [[nodiscard]] std::size_t subscriber_count(someip::ServiceId service,
                                             someip::EventId event) const override;

  void attach_send_tag(const someip::WireTag& tag) override;
  [[nodiscard]] std::optional<someip::WireTag> collect_received_tag() override;
  [[nodiscard]] bool received_tag_armed() const override;
  [[nodiscard]] std::optional<someip::WireTag> peek_send_tag() const override;

  void set_fault_plan(const ft::FaultPlan* plan) override { fault_plan_ = plan; }
  [[nodiscard]] const ft::FaultPlan* fault_plan() const noexcept override { return fault_plan_; }

  [[nodiscard]] net::Endpoint endpoint() const noexcept override { return self_; }
  [[nodiscard]] someip::ClientId client_id() const noexcept override { return client_id_; }
  [[nodiscard]] TransportStats stats() const override;
  [[nodiscard]] std::string_view transport_name() const noexcept override { return "local"; }

 private:
  struct Frame {
    someip::Message message;
    net::Endpoint from;
  };

  /// Peer-side entry point: enqueue, then drain unless this thread is
  /// already inside this binding's drain loop (the outer loop picks the
  /// frame up instead — no recursion). When another thread holds the
  /// drain lock, the drain is posted to the executor rather than blocked
  /// on, so cross-binding delivery chains cannot deadlock.
  void deliver(Frame frame);
  void pump();
  void drain_locked();
  void process(Frame& frame);

  void handle_request(const someip::Message& message, const net::Endpoint& from);
  void handle_response(const someip::Message& message);
  void handle_notification(const someip::Message& message);

  /// Collects the pending send tag into the message and routes it. The
  /// payload is moved, never copied or serialized.
  void send_frame(const net::Endpoint& destination, someip::Message message);

  void add_subscriber(someip::ServiceId service, someip::EventId event,
                      const net::Endpoint& subscriber);
  void remove_subscriber(someip::ServiceId service, someip::EventId event,
                         const net::Endpoint& subscriber);

  LocalHub& hub_;
  common::Executor& executor_;
  net::Endpoint self_;
  someip::ClientId client_id_;
  const ft::FaultPlan* fault_plan_{nullptr};

  someip::TimestampBypass send_bypass_;
  someip::TimestampBypass receive_bypass_;

  common::MpscQueue<Frame> inbox_;
  std::mutex receive_mutex_;
  std::atomic<std::thread::id> pumping_thread_{};

  mutable std::mutex mutex_;
  someip::SessionId next_session_{1};
  std::map<someip::SessionId, ResponseHandler> pending_;
  std::map<std::pair<someip::ServiceId, someip::MethodId>, RequestHandler> methods_;
  std::map<std::pair<someip::ServiceId, someip::EventId>, NotificationHandler> event_handlers_;
  std::map<std::pair<someip::ServiceId, someip::EventId>, std::vector<net::Endpoint>> subscribers_;

  std::uint64_t msgs_sent_{0};
  std::uint64_t msgs_received_{0};
  std::uint64_t requests_sent_{0};
  std::uint64_t responses_received_{0};
  std::uint64_t notifications_sent_{0};
  std::uint64_t notifications_received_{0};
  std::uint64_t tagged_sent_{0};
  std::uint64_t tagged_received_{0};
  std::uint64_t timeouts_{0};
};

}  // namespace dear::ara::com
