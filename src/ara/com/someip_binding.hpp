// SOME/IP backend of the transport-agnostic binding contract.
//
// A thin adapter: the protocol engine (framing, session matching,
// subscription control messages, the DEAR tag trailer) lives unchanged in
// someip::Binding; this class maps it onto the TransportBinding interface
// so the ara::com layer never names the concrete transport.
#pragma once

#include "ara/com/transport_binding.hpp"
#include "someip/binding.hpp"

namespace dear::ara::com {

class SomeIpBinding final : public TransportBinding {
 public:
  SomeIpBinding(net::Network& network, common::Executor& executor, net::Endpoint self,
                someip::ClientId client_id);

  // --- TransportBinding ----------------------------------------------------

  someip::SessionId call(const net::Endpoint& server, someip::ServiceId service,
                         someip::MethodId method, std::vector<std::uint8_t> payload,
                         ResponseHandler on_response, Duration timeout) override;
  void call_no_return(const net::Endpoint& server, someip::ServiceId service,
                      someip::MethodId method, std::vector<std::uint8_t> payload) override;
  void subscribe(const net::Endpoint& server, someip::ServiceId service, someip::EventId event,
                 NotificationHandler handler) override;
  void unsubscribe(const net::Endpoint& server, someip::ServiceId service,
                   someip::EventId event) override;

  void provide_method(someip::ServiceId service, someip::MethodId method,
                      RequestHandler handler) override;
  void remove_method(someip::ServiceId service, someip::MethodId method) override;
  void respond(const someip::Message& request, const net::Endpoint& to,
               std::vector<std::uint8_t> payload, someip::ReturnCode return_code) override;
  void notify(someip::ServiceId service, someip::EventId event,
              std::vector<std::uint8_t> payload) override;
  void notify_loaned(someip::ServiceId service, someip::EventId event,
                     common::LoanedBuffer payload) override;
  [[nodiscard]] std::size_t subscriber_count(someip::ServiceId service,
                                             someip::EventId event) const override;

  void attach_send_tag(const someip::WireTag& tag) override;
  [[nodiscard]] std::optional<someip::WireTag> collect_received_tag() override;
  [[nodiscard]] bool received_tag_armed() const override;
  [[nodiscard]] std::optional<someip::WireTag> peek_send_tag() const override {
    return binding_.send_bypass().peek();
  }

  void set_fault_plan(const ft::FaultPlan* plan) override { binding_.set_fault_plan(plan); }
  [[nodiscard]] const ft::FaultPlan* fault_plan() const noexcept override {
    return binding_.fault_plan();
  }

  [[nodiscard]] net::Endpoint endpoint() const noexcept override;
  [[nodiscard]] someip::ClientId client_id() const noexcept override;
  [[nodiscard]] TransportStats stats() const override;
  [[nodiscard]] std::string_view transport_name() const noexcept override { return "someip"; }

  /// The underlying protocol engine, for wire-level tests and stats that
  /// have no transport-agnostic meaning (e.g. malformed-frame counters).
  [[nodiscard]] someip::Binding& wire() noexcept { return binding_; }
  [[nodiscard]] const someip::Binding& wire() const noexcept { return binding_; }

 private:
  someip::Binding binding_;
};

}  // namespace dear::ara::com
