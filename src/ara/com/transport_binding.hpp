// Transport-agnostic ara::com binding contract.
//
// The ara::com layer (Runtime, ServiceProxy/ServiceSkeleton and the typed
// method/event/field templates) and the DEAR transactors talk to transports
// exclusively through this interface. Concrete backends:
//   * SomeIpBinding — the paper's modified SOME/IP stack over a
//     net::Network (someip_binding.hpp),
//   * LocalBinding  — zero-copy intra-process transport for co-located
//     SWCs (local_binding.hpp).
// A Runtime selects the backend per InstanceIdentifier through its
// BindingRegistry + DeploymentConfig (binding_registry.hpp).
//
// The in-memory message representation is the SOME/IP framing structure
// (someip::Message): service/method/client/session ids are AUTOSAR-level
// identifiers, not transport details. Whether a backend serializes the
// structure to a wire format (SOME/IP) or moves it through process memory
// (local) is its own business.
//
// DEAR's timestamp bypass (paper §III.B, Figure 3) is part of the contract,
// not a SOME/IP implementation detail: attach_send_tag() arms the tag the
// backend must carry on its next outgoing message, and
// collect_received_tag() surrenders the tag of the message currently being
// delivered. Both rely on the synchronous call nesting between transactor
// and binding, exactly as in the paper.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string_view>
#include <vector>

#include "common/buffer_pool.hpp"
#include "common/time.hpp"
#include "net/endpoint.hpp"
#include "obs/obs.hpp"
#include "someip/message.hpp"
#include "someip/types.hpp"

namespace dear::ft {
class FaultPlan;
}  // namespace dear::ft

namespace dear::ara::com {

/// Transport-level traffic counters, uniform across backends.
struct TransportStats {
  std::uint64_t requests_sent{0};
  std::uint64_t responses_received{0};
  std::uint64_t notifications_sent{0};
  std::uint64_t notifications_received{0};
  std::uint64_t tagged_sent{0};
  std::uint64_t tagged_received{0};
  std::uint64_t malformed_received{0};
  std::uint64_t timeouts{0};
};

class TransportBinding {
 public:
  using ResponseHandler = std::function<void(const someip::Message&)>;
  using RequestHandler = std::function<void(const someip::Message&, const net::Endpoint& from)>;
  using NotificationHandler = std::function<void(const someip::Message&)>;

  virtual ~TransportBinding() = default;

  // --- client role ---------------------------------------------------------

  /// Sends a method request. `on_response` fires (from the backend's
  /// receive path) with the response or, if `timeout` > 0 elapses first,
  /// with a synthesized kTimeout error message. Returns the session id.
  virtual someip::SessionId call(const net::Endpoint& server, someip::ServiceId service,
                                 someip::MethodId method, std::vector<std::uint8_t> payload,
                                 ResponseHandler on_response, Duration timeout = 0) = 0;

  /// Fire-and-forget request (REQUEST_NO_RETURN).
  virtual void call_no_return(const net::Endpoint& server, someip::ServiceId service,
                              someip::MethodId method, std::vector<std::uint8_t> payload) = 0;

  /// Subscribes to event notifications from `server`. The handler runs on
  /// the backend's receive path.
  virtual void subscribe(const net::Endpoint& server, someip::ServiceId service,
                         someip::EventId event, NotificationHandler handler) = 0;

  virtual void unsubscribe(const net::Endpoint& server, someip::ServiceId service,
                           someip::EventId event) = 0;

  // --- server role ---------------------------------------------------------

  /// Registers the handler for incoming requests to (service, method).
  virtual void provide_method(someip::ServiceId service, someip::MethodId method,
                              RequestHandler handler) = 0;

  virtual void remove_method(someip::ServiceId service, someip::MethodId method) = 0;

  /// Sends the response for `request` back to `to`.
  virtual void respond(const someip::Message& request, const net::Endpoint& to,
                       std::vector<std::uint8_t> payload,
                       someip::ReturnCode return_code = someip::ReturnCode::kOk) = 0;

  /// Sends a notification for (service, event) to all subscribers.
  virtual void notify(someip::ServiceId service, someip::EventId event,
                      std::vector<std::uint8_t> payload) = 0;

  /// Sends a published loaned slab to all subscribers (the sensor data
  /// plane). Backends that understand slabs move the handle — LocalBinding
  /// fans the same storage out by refcount, SomeIpBinding frames header +
  /// tag trailer around the bytes without serializing them. The default
  /// materializes a vector (one counted copy) and falls back to notify(),
  /// keeping other transports source-compatible.
  virtual void notify_loaned(someip::ServiceId service, someip::EventId event,
                             common::LoanedBuffer payload) {
    if (!payload) {
      return;
    }
    obs::count_always(obs::Counter::kDataplanePayloadCopies);
    notify(service, event,
           std::vector<std::uint8_t>(payload.data(), payload.data() + payload.size()));
  }

  [[nodiscard]] virtual std::size_t subscriber_count(someip::ServiceId service,
                                                     someip::EventId event) const = 0;

  // --- DEAR pending-tag contract (paper Figure 3) ---------------------------

  /// Arms the logical tag the backend attaches to its next outgoing
  /// message (steps 2/5 and 13/16).
  virtual void attach_send_tag(const someip::WireTag& tag) = 0;

  /// Surrenders the tag deposited for the message currently being
  /// delivered, or nullopt for untagged traffic (steps 7/10 and 18/21).
  [[nodiscard]] virtual std::optional<someip::WireTag> collect_received_tag() = 0;

  /// True while a received tag is waiting to be collected.
  [[nodiscard]] virtual bool received_tag_armed() const = 0;

  /// Returns the armed send tag without disarming it, or nullopt when no
  /// tag is pending. The retry layer records it so a retried attempt can
  /// re-arm the original tag advanced by its logical backoff.
  [[nodiscard]] virtual std::optional<someip::WireTag> peek_send_tag() const {
    return std::nullopt;
  }

  // --- deterministic fault injection (ft/fault_model.hpp) -------------------

  /// Installs (or clears, with nullptr) the shared injection plan. The
  /// plan must outlive the binding. Backends without injection support
  /// ignore it — the default keeps existing transports source-compatible.
  virtual void set_fault_plan(const ft::FaultPlan* /*plan*/) {}
  [[nodiscard]] virtual const ft::FaultPlan* fault_plan() const noexcept { return nullptr; }

  // --- identity + statistics -----------------------------------------------

  [[nodiscard]] virtual net::Endpoint endpoint() const noexcept = 0;
  [[nodiscard]] virtual someip::ClientId client_id() const noexcept = 0;
  [[nodiscard]] virtual TransportStats stats() const = 0;

  /// Short transport identifier for logs/benches, e.g. "someip" or "local".
  [[nodiscard]] virtual std::string_view transport_name() const noexcept = 0;
};

}  // namespace dear::ara::com
