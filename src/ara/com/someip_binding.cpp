#include "ara/com/someip_binding.hpp"

namespace dear::ara::com {

SomeIpBinding::SomeIpBinding(net::Network& network, common::Executor& executor, net::Endpoint self,
                             someip::ClientId client_id)
    : binding_(network, executor, self, client_id) {}

someip::SessionId SomeIpBinding::call(const net::Endpoint& server, someip::ServiceId service,
                                      someip::MethodId method, std::vector<std::uint8_t> payload,
                                      ResponseHandler on_response, Duration timeout) {
  return binding_.call(server, service, method, std::move(payload), std::move(on_response),
                       timeout);
}

void SomeIpBinding::call_no_return(const net::Endpoint& server, someip::ServiceId service,
                                   someip::MethodId method, std::vector<std::uint8_t> payload) {
  binding_.call_no_return(server, service, method, std::move(payload));
}

void SomeIpBinding::subscribe(const net::Endpoint& server, someip::ServiceId service,
                              someip::EventId event, NotificationHandler handler) {
  binding_.subscribe(server, service, event, std::move(handler));
}

void SomeIpBinding::unsubscribe(const net::Endpoint& server, someip::ServiceId service,
                                someip::EventId event) {
  binding_.unsubscribe(server, service, event);
}

void SomeIpBinding::provide_method(someip::ServiceId service, someip::MethodId method,
                                   RequestHandler handler) {
  binding_.provide_method(service, method, std::move(handler));
}

void SomeIpBinding::remove_method(someip::ServiceId service, someip::MethodId method) {
  binding_.remove_method(service, method);
}

void SomeIpBinding::respond(const someip::Message& request, const net::Endpoint& to,
                            std::vector<std::uint8_t> payload, someip::ReturnCode return_code) {
  binding_.respond(request, to, std::move(payload), return_code);
}

void SomeIpBinding::notify(someip::ServiceId service, someip::EventId event,
                           std::vector<std::uint8_t> payload) {
  binding_.notify(service, event, std::move(payload));
}

void SomeIpBinding::notify_loaned(someip::ServiceId service, someip::EventId event,
                                  common::LoanedBuffer payload) {
  binding_.notify_loaned(service, event, std::move(payload));
}

std::size_t SomeIpBinding::subscriber_count(someip::ServiceId service,
                                            someip::EventId event) const {
  return binding_.subscriber_count(service, event);
}

void SomeIpBinding::attach_send_tag(const someip::WireTag& tag) {
  binding_.send_bypass().deposit(tag);
}

std::optional<someip::WireTag> SomeIpBinding::collect_received_tag() {
  return binding_.receive_bypass().collect();
}

bool SomeIpBinding::received_tag_armed() const { return binding_.receive_bypass().armed(); }

net::Endpoint SomeIpBinding::endpoint() const noexcept { return binding_.endpoint(); }

someip::ClientId SomeIpBinding::client_id() const noexcept { return binding_.client_id(); }

TransportStats SomeIpBinding::stats() const {
  TransportStats stats;
  stats.requests_sent = binding_.requests_sent();
  stats.responses_received = binding_.responses_received();
  stats.notifications_sent = binding_.notifications_sent();
  stats.notifications_received = binding_.notifications_received();
  stats.tagged_sent = binding_.tagged_sent();
  stats.tagged_received = binding_.tagged_received();
  stats.malformed_received = binding_.malformed_received();
  stats.timeouts = binding_.timeouts();
  return stats;
}

}  // namespace dear::ara::com
