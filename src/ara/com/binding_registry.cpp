#include "ara/com/binding_registry.hpp"

#include <stdexcept>
#include <string>
#include <utility>

namespace dear::ara::com {

TransportBinding& BindingRegistry::attach(BackendKind kind,
                                          std::unique_ptr<TransportBinding> binding) {
  auto& slot = backends_[kind];
  if (slot != nullptr) {
    // Proxies, skeletons and transactors resolve their binding once and
    // keep a raw pointer; destroying an attached backend would leave them
    // dangling. Fail fast instead of replacing silently.
    throw std::logic_error(std::string("BindingRegistry: backend '") + to_string(kind) +
                           "' is already attached; backends cannot be replaced once attached");
  }
  slot = std::move(binding);
  return *slot;
}

TransportBinding* BindingRegistry::find(BackendKind kind) const noexcept {
  const auto it = backends_.find(kind);
  return it == backends_.end() ? nullptr : it->second.get();
}

}  // namespace dear::ara::com
