#include "ara/com/local_binding.hpp"

#include <algorithm>
#include <utility>

#include "common/logging.hpp"
#include "ft/fault_model.hpp"

namespace dear::ara::com {

namespace {
constexpr std::string_view kLogComponent = "ara.com.local";
}

// --- LocalHub ----------------------------------------------------------------

LocalBinding* LocalHub::find(const net::Endpoint& endpoint) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = bindings_.find(endpoint);
  return it == bindings_.end() ? nullptr : it->second;
}

std::size_t LocalHub::binding_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return bindings_.size();
}

std::uint64_t LocalHub::undeliverable() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return undeliverable_;
}

void LocalHub::attach(LocalBinding* binding) {
  const std::lock_guard<std::mutex> lock(mutex_);
  bindings_[binding->endpoint()] = binding;
}

void LocalHub::detach(const net::Endpoint& endpoint) {
  const std::lock_guard<std::mutex> lock(mutex_);
  bindings_.erase(endpoint);
}

void LocalHub::count_undeliverable() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++undeliverable_;
}

// --- LocalBinding ------------------------------------------------------------

LocalBinding::LocalBinding(LocalHub& hub, common::Executor& executor, net::Endpoint self,
                           someip::ClientId client_id)
    : hub_(hub), executor_(executor), self_(self), client_id_(client_id) {
  hub_.attach(this);
}

LocalBinding::~LocalBinding() {
  hub_.detach(self_);
  // Lifetime totals flush into the metrics registry; the hot paths keep
  // their plain member counters under the locks they already take.
  obs::count(obs::Counter::kLocalMsgsSent, msgs_sent_);
  obs::count(obs::Counter::kLocalMsgsReceived, msgs_received_);
  obs::count(obs::Counter::kLocalTaggedSent, tagged_sent_);
  obs::count(obs::Counter::kLocalTaggedReceived, tagged_received_);
  obs::count(obs::Counter::kLocalTimeouts, timeouts_);
}

void LocalBinding::send_frame(const net::Endpoint& destination, someip::Message message) {
  // Same contract as the wire path: pick up a pending tag from the bypass
  // and carry it — here in-band on the message, no trailer codec.
  message.tag = send_bypass_.collect();
  // Injected crash: while the victim node is down, its tagged traffic dies
  // at the binding exactly as if the process were gone. Untagged control
  // traffic passes, so peers keep their subscription state (warm restart).
  if (fault_plan_ != nullptr && message.tag.has_value() && fault_plan_->crashes(self_) &&
      fault_plan_->down_at(message.tag->time)) {
    fault_plan_->crash_drops.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++msgs_sent_;
    if (message.tag.has_value()) {
      ++tagged_sent_;
    }
  }
  LocalBinding* peer = hub_.find(destination);
  if (peer == nullptr) {
    hub_.count_undeliverable();
    DEAR_LOG_WARN(kLogComponent) << self_.to_string() << ": no local binding at "
                                 << destination.to_string() << "; dropping message";
    return;
  }
  peer->deliver(Frame{std::move(message), self_});
}

someip::SessionId LocalBinding::call(const net::Endpoint& server, someip::ServiceId service,
                                     someip::MethodId method, std::vector<std::uint8_t> payload,
                                     ResponseHandler on_response, Duration timeout) {
  someip::SessionId session = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    session = next_session_++;
    if (next_session_ == 0) {
      next_session_ = 1;  // session id 0 is reserved
    }
    pending_[session] = std::move(on_response);
    ++requests_sent_;
  }

  someip::Message message;
  message.service = service;
  message.method = method;
  message.client = client_id_;
  message.session = session;
  message.type = someip::MessageType::kRequest;
  message.payload = std::move(payload);
  send_frame(server, std::move(message));

  if (timeout > 0) {
    executor_.post_after(timeout, [this, session, service, method] {
      ResponseHandler handler;
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        const auto it = pending_.find(session);
        if (it == pending_.end()) {
          return;  // response already arrived
        }
        handler = std::move(it->second);
        pending_.erase(it);
        ++timeouts_;
      }
      someip::Message error;
      error.service = service;
      error.method = method;
      error.client = client_id_;
      error.session = session;
      error.type = someip::MessageType::kError;
      error.return_code = someip::ReturnCode::kTimeout;
      handler(error);
    });
  }
  return session;
}

void LocalBinding::call_no_return(const net::Endpoint& server, someip::ServiceId service,
                                  someip::MethodId method, std::vector<std::uint8_t> payload) {
  someip::Message message;
  message.service = service;
  message.method = method;
  message.client = client_id_;
  message.session = 0;
  message.type = someip::MessageType::kRequestNoReturn;
  message.payload = std::move(payload);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++requests_sent_;
  }
  send_frame(server, std::move(message));
}

void LocalBinding::subscribe(const net::Endpoint& server, someip::ServiceId service,
                             someip::EventId event, NotificationHandler handler) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    event_handlers_[{service, event}] = std::move(handler);
  }
  // In-process subscription management needs no control protocol: register
  // directly with the serving binding.
  LocalBinding* peer = hub_.find(server);
  if (peer == nullptr) {
    hub_.count_undeliverable();
    return;
  }
  peer->add_subscriber(service, event, self_);
}

void LocalBinding::unsubscribe(const net::Endpoint& server, someip::ServiceId service,
                               someip::EventId event) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    event_handlers_.erase({service, event});
  }
  LocalBinding* peer = hub_.find(server);
  if (peer == nullptr) {
    return;
  }
  peer->remove_subscriber(service, event, self_);
}

void LocalBinding::add_subscriber(someip::ServiceId service, someip::EventId event,
                                  const net::Endpoint& subscriber) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& list = subscribers_[{service, event}];
  if (std::find(list.begin(), list.end(), subscriber) == list.end()) {
    list.push_back(subscriber);
  }
}

void LocalBinding::remove_subscriber(someip::ServiceId service, someip::EventId event,
                                     const net::Endpoint& subscriber) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& list = subscribers_[{service, event}];
  const auto it = std::find(list.begin(), list.end(), subscriber);
  if (it != list.end()) {
    list.erase(it);
  }
}

void LocalBinding::provide_method(someip::ServiceId service, someip::MethodId method,
                                  RequestHandler handler) {
  const std::lock_guard<std::mutex> lock(mutex_);
  methods_[{service, method}] = std::move(handler);
}

void LocalBinding::remove_method(someip::ServiceId service, someip::MethodId method) {
  const std::lock_guard<std::mutex> lock(mutex_);
  methods_.erase({service, method});
}

void LocalBinding::respond(const someip::Message& request, const net::Endpoint& to,
                           std::vector<std::uint8_t> payload, someip::ReturnCode return_code) {
  someip::Message message;
  message.service = request.service;
  message.method = request.method;
  message.client = request.client;
  message.session = request.session;
  message.type = return_code == someip::ReturnCode::kOk ? someip::MessageType::kResponse
                                                        : someip::MessageType::kError;
  message.return_code = return_code;
  message.payload = std::move(payload);
  send_frame(to, std::move(message));
}

void LocalBinding::notify(someip::ServiceId service, someip::EventId event,
                          std::vector<std::uint8_t> payload) {
  std::vector<net::Endpoint> subscribers;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = subscribers_.find({service, event});
    if (it != subscribers_.end()) {
      subscribers = it->second;
    }
    ++notifications_sent_;
  }
  // The tag (if any) must reach every subscriber; collect once and re-arm
  // for each send. The payload is moved into the final send.
  const std::optional<someip::WireTag> tag = send_bypass_.collect();
  for (std::size_t i = 0; i < subscribers.size(); ++i) {
    if (tag.has_value()) {
      send_bypass_.deposit(*tag);
    }
    someip::Message message;
    message.service = service;
    message.method = event;
    message.client = client_id_;
    message.type = someip::MessageType::kNotification;
    if (i + 1 == subscribers.size()) {
      message.payload = std::move(payload);
    } else {
      message.payload = payload;
    }
    send_frame(subscribers[i], std::move(message));
  }
}

void LocalBinding::notify_loaned(someip::ServiceId service, someip::EventId event,
                                 common::LoanedBuffer payload) {
  if (!payload) {
    return;
  }
  // Snapshot the subscriber set into a fixed inline array — the general
  // notify() copies the subscriber vector per call, which would be a
  // per-frame allocation on the data plane's steady state. Fan-outs wider
  // than the inline capacity fall back to a heap snapshot.
  constexpr std::size_t kInlineSubscribers = 8;
  net::Endpoint inline_subscribers[kInlineSubscribers];
  std::vector<net::Endpoint> overflow_subscribers;
  const net::Endpoint* subscribers = inline_subscribers;
  std::size_t count = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = subscribers_.find({service, event});
    if (it != subscribers_.end()) {
      if (it->second.size() <= kInlineSubscribers) {
        count = it->second.size();
        std::copy(it->second.begin(), it->second.end(), inline_subscribers);
      } else {
        overflow_subscribers = it->second;
        subscribers = overflow_subscribers.data();
        count = overflow_subscribers.size();
      }
    }
    ++notifications_sent_;
  }
  // The tag (if any) must reach every subscriber; collect once and re-arm
  // for each send. The slab is never copied: each message carries a
  // refcount retain on the same storage, the last one moves the handle.
  const std::optional<someip::WireTag> tag = send_bypass_.collect();
  for (std::size_t i = 0; i < count; ++i) {
    if (tag.has_value()) {
      send_bypass_.deposit(*tag);
    }
    someip::Message message;
    message.service = service;
    message.method = event;
    message.client = client_id_;
    message.type = someip::MessageType::kNotification;
    if (i + 1 == count) {
      message.loaned = std::move(payload);
    } else {
      message.loaned = payload;
    }
    send_frame(subscribers[i], std::move(message));
  }
}

std::size_t LocalBinding::subscriber_count(someip::ServiceId service, someip::EventId event) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = subscribers_.find({service, event});
  return it == subscribers_.end() ? 0 : it->second.size();
}

void LocalBinding::deliver(Frame frame) {
  inbox_.push(std::move(frame));
  if (pumping_thread_.load(std::memory_order_acquire) == std::this_thread::get_id()) {
    // A handler on this thread sent to its own binding: the active drain
    // loop above us picks the frame up once the current handler returns.
    return;
  }
  pump();
}

void LocalBinding::pump() {
  // Never *block* on the drain lock from a delivery: the sender may be
  // inside another binding's drain loop, and two bindings delivering to
  // each other from two threads would deadlock on each other's locks.
  // Under contention the drain is handed to the executor instead (which
  // holds no drain lock when it runs, so blocking there is safe).
  if (!receive_mutex_.try_lock()) {
    // Every contended deliver posts a drain, so no frame can strand: it is
    // picked up either by the current lock holder or by this task.
    executor_.post([this] {
      const std::lock_guard<std::mutex> lock(receive_mutex_);
      drain_locked();
    });
    return;
  }
  const std::lock_guard<std::mutex> lock(receive_mutex_, std::adopt_lock);
  drain_locked();
}

void LocalBinding::drain_locked() {
  pumping_thread_.store(std::this_thread::get_id(), std::memory_order_release);
  while (auto frame = inbox_.pop()) {
    process(*frame);
  }
  pumping_thread_.store(std::thread::id{}, std::memory_order_release);
}

void LocalBinding::process(Frame& frame) {
  someip::Message& message = frame.message;
  // Injected crash, receive side: a down victim does not process tagged
  // traffic either (messages already in flight at crash time die here).
  if (fault_plan_ != nullptr && message.tag.has_value() && fault_plan_->crashes(self_) &&
      fault_plan_->down_at(message.tag->time)) {
    fault_plan_->crash_drops.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++msgs_received_;
    if (message.tag.has_value()) {
      ++tagged_received_;
    }
  }
  if (message.tag.has_value()) {
    // Same pairing as the wire path: deposit before invoking the handler.
    receive_bypass_.deposit(*message.tag);
  }

  if (message.is_request()) {
    handle_request(message, frame.from);
  } else if (message.is_response()) {
    handle_response(message);
  } else if (message.is_notification()) {
    handle_notification(message);
  }

  // A tag the handler did not collect is stale; clear it so it cannot be
  // mis-associated with the next untagged message.
  (void)receive_bypass_.collect();
}

void LocalBinding::handle_request(const someip::Message& message, const net::Endpoint& from) {
  // Per-call fault die: a pure function of (fault_seed, client, session),
  // hence identical across transports and worker counts. The local path
  // never duplicates frames, so no dedup guard is needed.
  if (fault_plan_ != nullptr && message.type == someip::MessageType::kRequest &&
      message.session != 0) {
    switch (fault_plan_->call_fault(message.client, message.session)) {
      case ft::FaultPlan::CallFault::kOmission:
        return;  // swallowed: the client's timeout is the only signal
      case ft::FaultPlan::CallFault::kError:
        respond(message, from, {}, someip::ReturnCode::kNotOk);
        return;
      case ft::FaultPlan::CallFault::kNone:
        break;
    }
  }
  RequestHandler handler;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = methods_.find({message.service, message.method});
    if (it != methods_.end()) {
      handler = it->second;
    }
  }
  if (!handler) {
    if (message.type == someip::MessageType::kRequest) {
      respond(message, from, {}, someip::ReturnCode::kUnknownMethod);
    }
    return;
  }
  handler(message, from);
}

void LocalBinding::handle_response(const someip::Message& message) {
  ResponseHandler handler;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = pending_.find(message.session);
    if (it == pending_.end()) {
      return;  // late response after timeout, or duplicate
    }
    handler = std::move(it->second);
    pending_.erase(it);
    ++responses_received_;
  }
  handler(message);
}

void LocalBinding::handle_notification(const someip::Message& message) {
  NotificationHandler handler;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it =
        event_handlers_.find({message.service, static_cast<someip::EventId>(message.method)});
    if (it == event_handlers_.end()) {
      return;
    }
    handler = it->second;
    ++notifications_received_;
  }
  handler(message);
}

void LocalBinding::attach_send_tag(const someip::WireTag& tag) { send_bypass_.deposit(tag); }

std::optional<someip::WireTag> LocalBinding::collect_received_tag() {
  return receive_bypass_.collect();
}

bool LocalBinding::received_tag_armed() const { return receive_bypass_.armed(); }

std::optional<someip::WireTag> LocalBinding::peek_send_tag() const { return send_bypass_.peek(); }

TransportStats LocalBinding::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  TransportStats stats;
  stats.requests_sent = requests_sent_;
  stats.responses_received = responses_received_;
  stats.notifications_sent = notifications_sent_;
  stats.notifications_received = notifications_received_;
  stats.tagged_sent = tagged_sent_;
  stats.tagged_received = tagged_received_;
  stats.timeouts = timeouts_;
  return stats;
}

}  // namespace dear::ara::com
