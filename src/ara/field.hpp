// Typed service fields.
//
// "Fields are state variables exposed by the server. Each field may provide
// a get method, a set method and an event that indicates state changes"
// (paper §II.A). A field therefore occupies two method ids and one event
// id; the DEAR field transactor bundle mirrors this composition with two
// method transactors and one event transactor (paper §III.B).
#pragma once

#include <mutex>
#include <optional>

#include "ara/event.hpp"
#include "ara/meta/service_interface.hpp"  // FieldIds
#include "ara/method.hpp"

namespace dear::ara {

template <typename T>
class SkeletonField {
 public:
  SkeletonField(ServiceSkeleton& skeleton, FieldIds ids)
      : get_method_(skeleton, ids.get), set_method_(skeleton, ids.set),
        notifier_(skeleton, ids.notify) {
    get_method_.set_handler([this]() -> Future<T> {
      const std::lock_guard<std::mutex> lock(mutex_);
      Promise<T> promise;
      if (value_.has_value()) {
        promise.set_value(*value_);
      } else {
        promise.SetError(ComErrc::kFieldValueNotSet);
      }
      return promise.get_future();
    });
    set_method_.set_handler([this](const T& requested) -> Future<T> {
      T accepted = set_filter_ ? set_filter_(requested) : requested;
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        value_ = accepted;
      }
      notifier_.Send(accepted);
      return make_ready_future<T>(std::move(accepted));
    });
  }

  /// Server-side update (also notifies subscribers).
  void Update(const T& value) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      value_ = value;
    }
    notifier_.Send(value);
  }

  /// Optional validation/clamping applied to client Set requests; returns
  /// the value actually adopted.
  void set_set_filter(std::function<T(const T&)> filter) { set_filter_ = std::move(filter); }

  [[nodiscard]] std::optional<T> value() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return value_;
  }

 private:
  mutable std::mutex mutex_;
  std::optional<T> value_;
  std::function<T(const T&)> set_filter_;
  SkeletonMethod<T> get_method_;
  SkeletonMethod<T, T> set_method_;
  SkeletonEvent<T> notifier_;
};

template <typename T>
class ProxyField {
 public:
  ProxyField(ServiceProxy& proxy, FieldIds ids)
      : get_method_(proxy, ids.get), set_method_(proxy, ids.set), notifier_(proxy, ids.notify) {}

  /// Reads the current field value.
  [[nodiscard]] Future<T> Get() { return get_method_(); }

  /// Writes the field; resolves with the value the server adopted.
  [[nodiscard]] Future<T> Set(const T& value) { return set_method_(value); }

  /// Update notifications.
  [[nodiscard]] ProxyEvent<T>& notifier() noexcept { return notifier_; }

 private:
  ProxyMethod<T> get_method_;
  ProxyMethod<T, T> set_method_;
  ProxyEvent<T> notifier_;
};

}  // namespace dear::ara
