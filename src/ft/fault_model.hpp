// Deterministic service-fault injection and tolerance budgets.
//
// The scenario engine can already perturb the *environment* (latency,
// drops, drift, sensor faults); this layer extends the fault model to the
// *services* themselves: a victim node crashing at a logical tag and
// restarting later, per-call error/omission faults, and subscription
// churn. Every decision here is a pure function of logical inputs — the
// wire tag of the affected message or the (client, session) identity of
// the affected call, hashed with the campaign-wide fault seed — never of
// physical time, thread interleaving or transport. That is what makes an
// injected crash reproducible bit-for-bit across platform seeds,
// SOME/IP vs local transport, and any worker count.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "net/endpoint.hpp"
#include "someip/types.hpp"

namespace dear::ft {

/// Scenario-level service fault knobs (scenario/spec.hpp carries one).
/// Crash and restart are expressed in *wire-tag time*: while the victim
/// is down, every tagged message entering or leaving its binding whose
/// wire tag falls inside [crash_at, crash_at + restart_after) is dropped.
/// Untagged control traffic (subscribes, legacy proxies) passes — a warm
/// restart keeps subscriber state, mirroring a crashed-and-supervised
/// process whose peers keep their session state.
struct ServiceFaultModel {
  /// Wire-tag time at which the victim service's node goes down, measured
  /// from the nominal release of sensor sample 0 (0 = never crashes). The
  /// pipelines anchor the window to their sensor capture grid — the
  /// platform clock offset shifts every sensor tag by up to a full period,
  /// and an absolute window would let it shift window membership (and the
  /// digest) with it. Pick boundaries strictly *between* the chain's
  /// wire-tag offsets mod period (the presets use +period/2): sensor tags
  /// carry sub-millisecond capture/network jitter, and a boundary that
  /// razor-cuts a jitter cloud makes membership of that one sample
  /// seed-dependent.
  Duration crash_at{0};
  /// Downtime before the warm restart (0 with crash_at set = the victim
  /// never comes back).
  Duration restart_after{0};
  /// Per-call probability that the server answers with an error response
  /// instead of invoking the handler.
  double call_error_probability{0.0};
  /// Per-call probability that the server silently swallows the request
  /// (the client's timeout is the only signal).
  double call_omission_probability{0.0};
  /// Period of subscription churn (repeated unsubscribe/resubscribe of a
  /// pipeline event subscription); 0 = no churn. Churn windows are
  /// physical, so churn scenarios leave the digest-invariance groups —
  /// the checkable claim is observable-error accounting, not digests.
  Duration churn_period{0};

  [[nodiscard]] bool any() const noexcept {
    return crash_at > 0 || call_error_probability > 0.0 || call_omission_probability > 0.0 ||
           churn_period > 0;
  }

  bool operator==(const ServiceFaultModel&) const = default;
};

/// Logical-time retry budget applied to proxy method calls (and field
/// get/set, which are methods on the wire). Retries re-arm the original
/// wire tag advanced by a deterministic linear backoff, so a retried call
/// is logically later but still fully reproducible. Keeping
/// backoff_base >= timeout guarantees the re-armed tag never falls behind
/// physical send time (retries stay non-tardy).
struct RetryBudget {
  /// Total attempts (1 = single try with timeout, 0 = retry disabled —
  /// calls behave exactly as before this subsystem existed).
  std::uint32_t max_attempts{0};
  /// Logical backoff added per retry: attempt k carries the armed wire
  /// tag advanced by (k - 1) * backoff_base.
  Duration backoff_base{0};
  /// Per-attempt timeout; expiry synthesizes a kTimeout error response.
  Duration timeout{0};

  [[nodiscard]] bool enabled() const noexcept { return max_attempts > 0; }

  /// Worst case added by the budget before a call finally fails: every
  /// attempt times out and every retry waits its backoff. Checked by
  /// DEAR-FT-002 against the chain's end-to-end budget.
  [[nodiscard]] Duration worst_case_latency() const noexcept {
    if (!enabled()) {
      return 0;
    }
    const auto attempts = static_cast<Duration>(max_attempts);
    return attempts * timeout + (attempts - 1) * attempts / 2 * backoff_base;
  }

  bool operator==(const RetryBudget&) const = default;
};

/// The compiled per-run injection plan, shared (read-only) by every
/// transport binding of a pipeline. Bindings consult it on their send and
/// receive paths; the counters are the only mutable state and exist for
/// reporting, not for decisions.
class FaultPlan {
 public:
  /// Endpoint of the victim node; a binding whose own endpoint matches is
  /// "crashed" while the wire tag is inside the down window.
  net::Endpoint victim{};
  /// Down window in wire-tag time: [down_from, down_until). down_from 0
  /// means no crash; down_until 0 with down_from set means forever.
  Duration down_from{0};
  Duration down_until{0};
  double call_error_probability{0.0};
  double call_omission_probability{0.0};
  /// Campaign-wide fault seed (scenario::derive_seed(seed, 0, "fault")).
  std::uint64_t fault_seed{1};

  [[nodiscard]] bool crashes(net::Endpoint self) const noexcept {
    return down_from > 0 && self == victim;
  }

  /// True when a wire tag timestamped `time` falls inside the down window.
  [[nodiscard]] bool down_at(Duration time) const noexcept {
    if (down_from <= 0 || time < down_from) {
      return false;
    }
    return down_until <= 0 || time < down_until;
  }

  enum class CallFault : std::uint8_t { kNone, kOmission, kError };

  /// Per-call fault die: a stateless hash of (fault_seed, client,
  /// session). Sessions are allocated in logical call order, so the
  /// outcome sequence is identical across transports and worker counts.
  [[nodiscard]] CallFault call_fault(someip::ClientId client,
                                     someip::SessionId session) const noexcept {
    if (call_error_probability <= 0.0 && call_omission_probability <= 0.0) {
      return CallFault::kNone;
    }
    std::uint64_t state = fault_seed ^ (static_cast<std::uint64_t>(client) << 32U) ^ session;
    const double u = static_cast<double>(common::splitmix64(state) >> 11U) * 0x1.0p-53;
    if (u < call_omission_probability) {
      call_omissions.fetch_add(1, std::memory_order_relaxed);
      return CallFault::kOmission;
    }
    if (u < call_omission_probability + call_error_probability) {
      call_errors.fetch_add(1, std::memory_order_relaxed);
      return CallFault::kError;
    }
    return CallFault::kNone;
  }

  /// Reporting counters (atomic only because RT deployments may touch a
  /// binding from several threads; inside one DES scenario all traffic is
  /// single-threaded).
  mutable std::atomic<std::uint64_t> crash_drops{0};
  mutable std::atomic<std::uint64_t> call_errors{0};
  mutable std::atomic<std::uint64_t> call_omissions{0};
};

}  // namespace dear::ft
