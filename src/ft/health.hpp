// Descriptor-level health monitoring: heartbeat service + supervisor.
//
// The degradation half of the fault-tolerance subsystem needs one piece
// of shared knowledge: "is the service I depend on alive, at this logical
// tag?" — answered without wall-clock watchdogs, which would be
// nondeterministic. A HeartbeatEmitter on the (potential) victim node
// publishes a timer-driven heartbeat event through a regular DEAR server
// transactor; a Supervisor on the consuming node receives it through a
// client transactor and classifies the service healthy / degraded / dead
// by comparing the last beat's release tag against logical now at fixed
// check ticks. An injected crash stops the victim's tagged traffic —
// heartbeats included — so the supervisor's state transitions happen at
// well-defined tags and the degraded-mode controllers they drive stay
// bit-reproducible.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "ara/meta/service_interface.hpp"
#include "common/time.hpp"
#include "obs/obs.hpp"
#include "reactor/reactor.hpp"
#include "someip/serialization.hpp"

namespace dear::ft {

/// Service id of the health-monitor interface (brake owns 0x1001-0x1004,
/// acc 0x2001-0x2003, 0xFFFF is SOME/IP control).
inline constexpr someip::ServiceId kHealthService = 0x00FD;

struct Heartbeat {
  std::uint64_t seq{0};

  bool operator==(const Heartbeat&) const = default;
};

inline void someip_serialize(someip::Writer& w, const Heartbeat& v) { w.write_u64(v.seq); }

inline void someip_deserialize(someip::Reader& r, Heartbeat& v) { v.seq = r.read_u64(); }

/// Health-monitor interface: the supervised node offers the beat stream.
struct Health {
  static constexpr ara::meta::Event<Heartbeat, 0x8001> beat{"beat"};
  static constexpr auto kInterface =
      ara::meta::service_interface("Health", kHealthService, {1, 0}, beat);
};

enum class HealthState : std::uint8_t { kHealthy, kDegraded, kDead };

[[nodiscard]] constexpr std::string_view to_string(HealthState state) noexcept {
  switch (state) {
    case HealthState::kHealthy:
      return "healthy";
    case HealthState::kDegraded:
      return "degraded";
    case HealthState::kDead:
      return "dead";
  }
  return "?";
}

/// Timer-driven heartbeat source on the supervised node. Wire its `out`
/// to the Health server transactor; an injected crash silences it along
/// with all other tagged traffic of the node.
class HeartbeatEmitter final : public reactor::Reactor {
 public:
  reactor::Output<Heartbeat> out{"out", this};

  /// `phase` places the beat grid (0 = one period after startup). The
  /// pipelines anchor it to their sensor capture grid so the beats killed
  /// by an injected crash window are the same beats for every platform
  /// seed.
  HeartbeatEmitter(reactor::Environment& environment, Duration period, Duration phase = 0)
      : Reactor("heartbeat_emitter", environment),
        beat_timer_("beat_timer", this, period, phase > 0 ? phase : period) {
    add_reaction("on_beat", [this] { out.set(Heartbeat{seq_++}); })
        .triggered_by(beat_timer_)
        .writes(out);
  }

 private:
  reactor::Timer beat_timer_;
  std::uint64_t seq_{0};
};

struct SupervisorConfig {
  /// Staleness evaluation tick; transitions only happen at these tags.
  Duration check_period{50 * kMillisecond};
  /// Phase of the first check (0 = one check_period after startup). Like
  /// the beat grid, the pipelines anchor it to the sensor capture grid so
  /// classification tags sit at fixed offsets from the sensor stream.
  Duration check_phase{0};
  /// Beat-free gap after which the service counts as degraded.
  Duration degraded_after{120 * kMillisecond};
  /// Beat-free gap after which the service counts as dead (the fallback
  /// controllers engage).
  Duration dead_after{200 * kMillisecond};
};

/// Classifies a supervised service by heartbeat staleness in logical
/// time. Emits `state_out` only on transitions, so downstream reactions
/// trigger exactly when the health state changes.
class Supervisor final : public reactor::Reactor {
 public:
  reactor::Input<Heartbeat> beat_in{"beat_in", this};
  reactor::Output<HealthState> state_out{"state_out", this};

  Supervisor(reactor::Environment& environment, SupervisorConfig config)
      : Reactor("health_supervisor", environment),
        config_(config),
        check_timer_("check_timer", this, config.check_period,
                     config.check_phase > 0 ? config.check_phase : config.check_period) {
    add_reaction("on_beat", [this] { last_beat_ = current_tag().time; })
        .triggered_by(beat_in)
        .writes_state("ft.health.last_beat");
    add_reaction("on_check",
                 [this] {
                   const Duration gap = current_tag().time - last_beat_;
                   HealthState next = HealthState::kHealthy;
                   if (gap > config_.dead_after) {
                     next = HealthState::kDead;
                   } else if (gap > config_.degraded_after) {
                     next = HealthState::kDegraded;
                   }
                   if (next == state_) {
                     return;
                   }
                   if (next == HealthState::kDead) {
                     ++failovers_;
                     obs::count(obs::Counter::kFtFailovers);
                   }
                   state_ = next;
                   state_out.set(next);
                 })
        .triggered_by(check_timer_)
        .writes(state_out)
        .reads_state("ft.health.last_beat")
        .writes_state("ft.health.state");
  }

  [[nodiscard]] HealthState state() const noexcept { return state_; }
  /// Transitions into kDead (each engages the consumers' fallbacks).
  [[nodiscard]] std::uint64_t failovers() const noexcept { return failovers_; }

 private:
  SupervisorConfig config_;
  reactor::Timer check_timer_;
  Duration last_beat_{0};
  HealthState state_{HealthState::kHealthy};
  std::uint64_t failovers_{0};
};

}  // namespace dear::ft
