#include "scenario/workloads.hpp"

#include <algorithm>

#include "common/digest.hpp"

namespace dear::scenario {

namespace {

[[nodiscard]] RunOutcome from_pipeline_result(const brake::PipelineResult& result) {
  RunOutcome outcome;
  outcome.samples_in = result.frames_sent;
  outcome.samples_out = result.frames_processed_eba;
  outcome.app_errors = result.errors.total();
  outcome.protocol_errors =
      result.deadline_violations + result.tardy_messages + result.untagged_messages;
  outcome.wrong_outputs = result.wrong_decisions;
  outcome.sensor_faults_injected =
      result.sensor_dropped + result.sensor_stuck + result.sensor_noisy;
  outcome.deadline_violations = result.deadline_violations;
  outcome.ft_crash_drops = result.ft_crash_drops;
  outcome.ft_call_faults = result.ft_call_faults;
  outcome.ft_retries = result.ft_retries;
  outcome.ft_degraded_ticks = result.ft_degraded_ticks;
  outcome.ft_failovers = result.ft_failovers;
  outcome.output_digest = result.output_digest;
  outcome.tag_digest = result.tag_digest;
  if (result.latency.count() > 0) {
    outcome.latency_mean_ns = result.latency.mean();
    outcome.latency_max_ns = result.latency.max();
  }
  return outcome;
}

[[nodiscard]] RunOutcome from_acc_result(const acc::AccResult& result) {
  RunOutcome outcome;
  outcome.samples_in = result.scans_sent;
  outcome.samples_out = result.commands;
  // The chain has no buffer-overwrite errors by construction; losses show
  // up as protocol errors or missing commands.
  outcome.app_errors = result.scans_sent - std::min(result.commands, result.scans_sent);
  outcome.protocol_errors = result.deadline_violations + result.tardy_messages +
                            result.untagged_messages + result.dropped_messages +
                            result.remote_errors;
  outcome.wrong_outputs = result.wrong_commands;
  outcome.sensor_faults_injected =
      result.sensor_dropped + result.sensor_stuck + result.sensor_noisy;
  outcome.deadline_violations = result.deadline_violations;
  outcome.ft_crash_drops = result.ft_crash_drops;
  outcome.ft_call_faults = result.ft_call_faults;
  outcome.ft_retries = result.ft_retries;
  outcome.ft_degraded_ticks = result.ft_degraded_ticks;
  outcome.ft_failovers = result.ft_failovers;
  // Fold the console's field-traffic digest in: a scenario only counts as
  // behaviorally identical when events, methods and field all agree.
  outcome.output_digest = result.output_digest;
  common::mix_digest(outcome.output_digest, result.console_digest);
  outcome.tag_digest = result.tag_digest;
  return outcome;
}

}  // namespace

brake::DearScenarioConfig to_dear_config(const ScenarioSpec& spec) {
  brake::DearScenarioConfig config;
  config.frames = spec.frames;
  config.camera_payload_bytes = static_cast<std::size_t>(spec.camera_payload_bytes);
  config.platform_seed = spec.platform_seed;
  config.camera_seed = spec.sensor_seed;
  config.camera_drift_ppm = spec.clock_drift_ppm;
  config.deadline_scale = spec.deadline_scale;
  config.exec_time_scale = spec.exec_time_scale;
  config.local_transport = spec.transport == Transport::kLocal;
  config.svc_latency_min = spec.svc_latency_min;
  config.svc_latency_max = spec.svc_latency_max;
  config.net_drop_probability = spec.net_drop_probability;
  config.net_duplicate_probability = spec.net_duplicate_probability;
  config.net_in_order = spec.net_in_order;
  config.sensor_faults = spec.sensor_faults;
  config.service_faults = spec.service_faults;
  config.retry = spec.retry;
  config.fault_seed = spec.fault_seed;
  return config;
}

brake::ScenarioConfig to_nondet_config(const ScenarioSpec& spec) {
  brake::ScenarioConfig config;
  config.frames = spec.frames;
  config.platform_seed = spec.platform_seed;
  config.camera_seed = spec.sensor_seed;
  config.max_drift_ppm = spec.clock_drift_ppm;
  config.svc_latency_min = spec.svc_latency_min;
  config.svc_latency_max = spec.svc_latency_max;
  config.net_drop_probability = spec.net_drop_probability;
  config.net_duplicate_probability = spec.net_duplicate_probability;
  config.net_in_order = spec.net_in_order;
  config.sensor_faults = spec.sensor_faults;
  config.camera_payload_bytes = static_cast<std::size_t>(spec.camera_payload_bytes);
  return config;
}

acc::AccScenarioConfig to_acc_config(const ScenarioSpec& spec) {
  acc::AccScenarioConfig config;
  config.scans = spec.frames;
  config.platform_seed = spec.platform_seed;
  config.radar_seed = spec.sensor_seed;
  config.radar_drift_ppm = spec.clock_drift_ppm;
  config.deadline_scale = spec.deadline_scale;
  config.exec_time_scale = spec.exec_time_scale;
  config.local_transport = spec.transport == Transport::kLocal;
  config.svc_latency_min = spec.svc_latency_min;
  config.svc_latency_max = spec.svc_latency_max;
  config.net_drop_probability = spec.net_drop_probability;
  config.net_duplicate_probability = spec.net_duplicate_probability;
  config.net_in_order = spec.net_in_order;
  config.sensor_faults = spec.sensor_faults;
  config.service_faults = spec.service_faults;
  config.retry = spec.retry;
  config.fault_seed = spec.fault_seed;
  return config;
}

RunOutcome run_scenario(const ScenarioSpec& spec) {
  switch (spec.workload) {
    case Workload::kBrakeDear:
      return from_pipeline_result(brake::run_dear_pipeline(to_dear_config(spec)));
    case Workload::kBrakeNondet:
      return from_pipeline_result(brake::run_nondet_pipeline(to_nondet_config(spec)));
    case Workload::kAcc:
      return from_acc_result(acc::run_acc_pipeline(to_acc_config(spec)));
  }
  return RunOutcome{};
}

}  // namespace dear::scenario
