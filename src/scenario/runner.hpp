// Parallel campaign execution.
//
// Every scenario is an independent single-threaded DES run (own kernel,
// network, runtimes, rng streams — audited: no state is shared between
// runs), so the runner is an embarrassingly-parallel batch executor: a
// fixed pool of workers claims scenario batches off an atomic cursor and
// writes results into preallocated, cache-line aligned matrix slots.
// Between the thread-local pool magazines (each worker's scratch arena,
// reused across its scenarios and drained back on exit) and the aligned
// slots, a steady-state worker shares no allocator state and no cache
// lines with its peers. Result content is a pure function of the campaign
// spec; worker count and claim order only affect wall time, which the
// scenario tests pin down by comparing report digests across worker
// counts.
//
// After the batch, the runner evaluates the subsystem's first-class
// determinism invariants: scenarios for which the paper's assumptions
// hold (ScenarioSpec::expect_deterministic) are grouped by digest_group(),
// and every member of a group must carry bit-identical output and tag
// digests — across platform seeds, fault knobs within bounds, transports
// and worker counts. The nondet workload is exempt: its per-scenario
// error spread is the paper's Figure 5 contrast, reported but never a
// violation.
#pragma once

#include <cstddef>

#include "scenario/campaign.hpp"
#include "scenario/report.hpp"

namespace dear::scenario {

struct RunnerOptions {
  /// Worker threads for the batch; 0 = std::thread::hardware_concurrency().
  std::size_t workers{0};
  /// Evaluate the determinism invariants after the batch (cheap; disable
  /// only for raw throughput measurements).
  bool check_invariants{true};
  /// Annotate every row with the static timing analyzer's verdict
  /// (ScenarioResult::timing): the app is rebuilt in build-only mode per
  /// distinct (workload, deadline_scale, exec_time_scale) combination and
  /// the DEAR-TIME/LAT findings become the predicted-deadline-miss bit.
  /// Off by default — annotation allocates outside the run loop's pools.
  bool annotate_timing{false};
};

class CampaignRunner {
 public:
  explicit CampaignRunner(RunnerOptions options = {}) noexcept : options_(options) {}

  /// Expands the campaign grid and executes the scenario matrix.
  [[nodiscard]] CampaignReport run(const CampaignSpec& campaign) const;

  /// Executes an explicit scenario list (indices are renumbered to match
  /// matrix order so reports stay worker-count independent).
  [[nodiscard]] CampaignReport run(std::string name, std::vector<ScenarioSpec> scenarios,
                                   std::uint64_t campaign_seed) const;

  [[nodiscard]] std::size_t worker_count() const noexcept;

 private:
  RunnerOptions options_;
};

}  // namespace dear::scenario
