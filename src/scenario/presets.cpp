#include "scenario/presets.hpp"

namespace dear::scenario::presets {

CampaignSpec smoke(std::uint64_t frames, std::uint64_t campaign_seed) {
  CampaignSpec campaign;
  campaign.name = "smoke";
  campaign.campaign_seed = campaign_seed;
  campaign.base.frames = frames;
  campaign.workloads = {Workload::kBrakeDear, Workload::kBrakeNondet};
  campaign.net_drop_probabilities = {0.0, 0.05};
  campaign.net_duplicate_probabilities = {0.0, 0.1};
  campaign.replicas = 2;
  return campaign;  // 2 * 2 * 2 * 2 = 16 scenarios
}

CampaignSpec fault_sweep(std::uint64_t frames, std::uint64_t campaign_seed) {
  CampaignSpec campaign;
  campaign.name = "fault-sweep";
  campaign.campaign_seed = campaign_seed;
  campaign.base.frames = frames;
  campaign.workloads = {Workload::kBrakeDear, Workload::kBrakeNondet, Workload::kAcc};
  campaign.transports = {Transport::kSomeIp, Transport::kLocal};
  campaign.net_drop_probabilities = {0.0, 0.02};
  campaign.net_duplicate_probabilities = {0.0, 0.05};
  sim::SensorFaultModel faulty;
  faulty.drop_probability = 0.02;
  faulty.stuck_probability = 0.02;
  faulty.noise_probability = 0.01;
  campaign.sensor_fault_models = {sim::SensorFaultModel{}, faulty};
  campaign.replicas = 2;
  return campaign;  // 3 * 2 * 2 * 2 * 2 * 2 = 96 scenarios
}

CampaignSpec fault_tolerance_sweep(std::uint64_t frames, std::uint64_t campaign_seed) {
  CampaignSpec campaign;
  campaign.name = "fault-tolerance";
  campaign.campaign_seed = campaign_seed;
  campaign.base.frames = frames;
  campaign.workloads = {Workload::kBrakeDear, Workload::kAcc};
  campaign.transports = {Transport::kSomeIp, Transport::kLocal};
  // Both pipelines sample at 50 ms, and crash_at counts from sensor
  // sample 0's nominal release: down a third of the way in, back up after
  // a quarter of the run spent dark. The half-period offset keeps both
  // window boundaries strictly between the victims' wire-tag clouds (the
  // brake victim's traffic sits near the grid +{5, 30}ms mod period, the
  // ACC victim's at +5ms): sensor tags carry sub-millisecond jitter, so
  // a boundary that razor-cut a cloud would make membership of that one
  // frame platform-seed-dependent.
  const Duration period = 50 * kMillisecond;
  ft::ServiceFaultModel crash;
  crash.crash_at = static_cast<Duration>(frames / 3) * period + period / 2;
  crash.restart_after = static_cast<Duration>(frames / 4) * period;
  ft::ServiceFaultModel crash_and_faults = crash;
  crash_and_faults.call_error_probability = 0.02;
  crash_and_faults.call_omission_probability = 0.02;
  campaign.service_fault_models = {crash, crash_and_faults};
  ft::RetryBudget two_attempts{2, 6 * kMillisecond, 5 * kMillisecond};
  ft::RetryBudget three_attempts{3, 6 * kMillisecond, 5 * kMillisecond};
  campaign.retry_budgets = {ft::RetryBudget{}, two_attempts, three_attempts};
  campaign.replicas = 2;
  return campaign;  // 2 * 2 * 2 * 3 * 2 = 48 scenarios
}

CampaignSpec fault_tolerance_smoke(std::uint64_t frames, std::uint64_t campaign_seed) {
  CampaignSpec campaign = fault_tolerance_sweep(frames, campaign_seed);
  campaign.name = "fault-tolerance-smoke";
  campaign.retry_budgets = {ft::RetryBudget{2, 6 * kMillisecond, 5 * kMillisecond}};
  return campaign;  // 2 * 2 * 2 * 1 * 2 = 16 scenarios
}

CampaignSpec throughput(std::uint64_t scenario_count, std::uint64_t frames,
                        std::uint64_t campaign_seed) {
  CampaignSpec campaign;
  campaign.name = "throughput";
  campaign.campaign_seed = campaign_seed;
  campaign.base.frames = frames;
  campaign.base.workload = Workload::kBrakeDear;
  campaign.replicas = scenario_count;
  return campaign;
}

}  // namespace dear::scenario::presets
