#include "scenario/presets.hpp"

namespace dear::scenario::presets {

CampaignSpec smoke(std::uint64_t frames, std::uint64_t campaign_seed) {
  CampaignSpec campaign;
  campaign.name = "smoke";
  campaign.campaign_seed = campaign_seed;
  campaign.base.frames = frames;
  campaign.workloads = {Workload::kBrakeDear, Workload::kBrakeNondet};
  campaign.net_drop_probabilities = {0.0, 0.05};
  campaign.net_duplicate_probabilities = {0.0, 0.1};
  campaign.replicas = 2;
  return campaign;  // 2 * 2 * 2 * 2 = 16 scenarios
}

CampaignSpec fault_sweep(std::uint64_t frames, std::uint64_t campaign_seed) {
  CampaignSpec campaign;
  campaign.name = "fault-sweep";
  campaign.campaign_seed = campaign_seed;
  campaign.base.frames = frames;
  campaign.workloads = {Workload::kBrakeDear, Workload::kBrakeNondet, Workload::kAcc};
  campaign.transports = {Transport::kSomeIp, Transport::kLocal};
  campaign.net_drop_probabilities = {0.0, 0.02};
  campaign.net_duplicate_probabilities = {0.0, 0.05};
  sim::SensorFaultModel faulty;
  faulty.drop_probability = 0.02;
  faulty.stuck_probability = 0.02;
  faulty.noise_probability = 0.01;
  campaign.sensor_fault_models = {sim::SensorFaultModel{}, faulty};
  campaign.replicas = 2;
  return campaign;  // 3 * 2 * 2 * 2 * 2 * 2 = 96 scenarios
}

CampaignSpec throughput(std::uint64_t scenario_count, std::uint64_t frames,
                        std::uint64_t campaign_seed) {
  CampaignSpec campaign;
  campaign.name = "throughput";
  campaign.campaign_seed = campaign_seed;
  campaign.base.frames = frames;
  campaign.base.workload = Workload::kBrakeDear;
  campaign.replicas = scenario_count;
  return campaign;
}

}  // namespace dear::scenario::presets
