#include "scenario/campaign.hpp"

namespace dear::scenario {

namespace {

/// Iterates an axis, falling back to the base value when the axis is
/// empty. Keeps expand() readable as eleven nested loops without
/// special-casing empty axes in each.
template <typename T, typename F>
void for_axis(const std::vector<T>& axis, const T& base_value, F&& f) {
  if (axis.empty()) {
    f(base_value);
    return;
  }
  for (const T& value : axis) {
    f(value);
  }
}

}  // namespace

std::uint64_t CampaignSpec::grid_size() const noexcept {
  const auto dim = [](std::size_t n) -> std::uint64_t { return n == 0 ? 1 : n; };
  return dim(workloads.size()) * dim(transports.size()) * dim(net_drop_probabilities.size()) *
         dim(net_duplicate_probabilities.size()) * dim(svc_latency_ranges.size()) *
         dim(clock_drift_ppms.size()) * dim(deadline_scales.size()) *
         dim(exec_time_scales.size()) * dim(sensor_fault_models.size()) *
         dim(service_fault_models.size()) * dim(retry_budgets.size()) *
         (replicas == 0 ? 1 : replicas);
}

std::vector<ScenarioSpec> CampaignSpec::expand() const {
  std::vector<ScenarioSpec> scenarios;
  scenarios.reserve(grid_size());
  const std::uint64_t replica_count = replicas == 0 ? 1 : replicas;
  const std::uint64_t sensor_seed = derive_seed(campaign_seed, 0, "sensor");
  // Like the sensor stream, the per-call fault die is campaign-wide, so
  // every scenario of a digest group shares the same fault decisions.
  const std::uint64_t fault_seed = derive_seed(campaign_seed, 0, "fault");

  for_axis(workloads, base.workload, [&](Workload workload) {
    for_axis(transports, base.transport, [&](Transport transport) {
      for_axis(net_drop_probabilities, base.net_drop_probability, [&](double drop) {
        for_axis(net_duplicate_probabilities, base.net_duplicate_probability, [&](double dup) {
          for_axis(svc_latency_ranges, {base.svc_latency_min, base.svc_latency_max},
                   [&](const std::pair<Duration, Duration>& latency) {
            for_axis(clock_drift_ppms, base.clock_drift_ppm, [&](double drift) {
              for_axis(deadline_scales, base.deadline_scale, [&](double deadline_scale) {
                for_axis(exec_time_scales, base.exec_time_scale, [&](double exec_scale) {
                  for_axis(sensor_fault_models, base.sensor_faults,
                           [&](const sim::SensorFaultModel& faults) {
                    for_axis(service_fault_models, base.service_faults,
                             [&](const ft::ServiceFaultModel& svc_faults) {
                      for_axis(retry_budgets, base.retry, [&](const ft::RetryBudget& retry) {
                        for (std::uint64_t replica = 0; replica < replica_count; ++replica) {
                          ScenarioSpec spec = base;
                          spec.index = scenarios.size();
                          spec.workload = workload;
                          spec.transport = transport;
                          spec.net_drop_probability = drop;
                          spec.net_duplicate_probability = dup;
                          spec.svc_latency_min = latency.first;
                          spec.svc_latency_max = latency.second;
                          spec.clock_drift_ppm = drift;
                          spec.deadline_scale = deadline_scale;
                          spec.exec_time_scale = exec_scale;
                          spec.sensor_faults = faults;
                          spec.service_faults = svc_faults;
                          spec.retry = retry;
                          // Platform timing is a pure function of
                          // (campaign seed, scenario index); the sensor
                          // input stream and the fault die are shared
                          // campaign-wide.
                          spec.platform_seed = derive_seed(campaign_seed, spec.index, "platform");
                          spec.sensor_seed = sensor_seed;
                          spec.fault_seed = fault_seed;
                          spec.name = spec.describe();
                          scenarios.push_back(std::move(spec));
                        }
                      });
                    });
                  });
                });
              });
            });
          });
        });
      });
    });
  });
  return scenarios;
}

}  // namespace dear::scenario
