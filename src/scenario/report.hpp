// Aggregated outcome of a scenario campaign.
//
// The report keeps per-scenario rows in matrix order (independent of
// which worker ran what), campaign-level aggregates, and the list of
// determinism-invariant violations the runner detected. report_digest()
// folds every row into one value — two campaigns executed with different
// worker counts must produce the same digest, which is itself one of the
// subsystem's tested invariants.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "scenario/spec.hpp"
#include "scenario/workloads.hpp"

namespace dear::scenario {

/// The static timing analyzer's verdict for one scenario, attached to the
/// row when the runner annotates timing (RunnerOptions::annotate_timing).
/// Not part of report_digest(): the prediction is a bound derived before
/// the run, not an observation of it.
struct TimingVerdict {
  /// False when the timing pass did not run for this row.
  bool evaluated{false};
  /// A DEAR-TIME-001 or DEAR-LAT-002 finding fired: deadline misses are
  /// statically certain for this scenario's timing scales.
  bool predicted_deadline_miss{false};
  /// Worst chain logical latency and the budget it was checked against
  /// (0 when the workload declares no end-to-end budget).
  std::int64_t chain_latency_max_ns{0};
  std::int64_t chain_budget_ns{0};
  /// A DEAR-LAT-001 finding fired: the bound exceeds the budget.
  bool budget_exceeded{false};
};

/// Per-scenario observability sample: deltas of the worker thread's local
/// metric cells across the run (the scenario's objects are all destroyed
/// inside run_scenario, so their teardown flushes land before the after-
/// read). Never part of report_digest() — wall-clock and host-dependent
/// data stay out of determinism checks.
struct ScenarioObs {
  /// False when metrics were disabled for the campaign (fields are 0).
  bool sampled{false};
  /// Registry ordinal of the worker thread that ran the scenario.
  std::uint32_t worker{0};
  std::uint64_t sim_events{0};
  std::uint64_t net_packets{0};
  std::uint64_t net_drops{0};
  std::uint64_t net_dups{0};
  std::uint64_t msgs_sent{0};
  std::uint64_t msgs_received{0};
  std::uint64_t wire_bytes{0};
  std::uint64_t shelf_locks{0};
};

/// Cache-line aligned: campaign workers write neighbouring slots of the
/// preallocated result matrix concurrently, and without the alignment two
/// workers' outcome stores false-share one line around every slot
/// boundary (measured against the batch runner's claim cursor).
struct alignas(64) ScenarioResult {
  ScenarioSpec spec;
  RunOutcome outcome;
  /// Host wall-clock seconds this run took (not part of report_digest()).
  double wall_seconds{0.0};
  /// Whether the run participated in a digest-invariance group.
  bool determinism_checked{false};
  TimingVerdict timing;
  ScenarioObs obs;
};

struct CampaignReport {
  std::string name;
  std::uint64_t campaign_seed{0};
  std::size_t workers{1};
  double wall_seconds{0.0};

  /// Rows in scenario-matrix order.
  std::vector<ScenarioResult> results;

  /// Digest-invariance groups among expect_deterministic() scenarios.
  std::size_t determinism_groups{0};
  std::size_t determinism_checked_runs{0};
  /// Human-readable invariant violations (empty = all invariants hold).
  std::vector<std::string> violations;

  [[nodiscard]] bool invariants_ok() const noexcept { return violations.empty(); }

  /// Error-prevalence spread of the nondet runs (the Figure 5 contrast).
  [[nodiscard]] common::RunningStats nondet_prevalence() const;

  /// Campaign throughput in scenarios per second.
  [[nodiscard]] double scenarios_per_second() const noexcept {
    return wall_seconds > 0.0 ? static_cast<double>(results.size()) / wall_seconds : 0.0;
  }

  /// Order-sensitive digest over every scenario's outcome, in matrix
  /// order. Identical across worker counts by construction.
  [[nodiscard]] std::uint64_t report_digest() const;

  /// Machine-readable report (stable schema, no external deps).
  [[nodiscard]] std::string to_json() const;

  /// Human-readable summary table for consoles and CI logs.
  [[nodiscard]] std::string to_table() const;
};

}  // namespace dear::scenario
