// Aggregated outcome of a scenario campaign.
//
// The report keeps per-scenario rows in matrix order (independent of
// which worker ran what), campaign-level aggregates, and the list of
// determinism-invariant violations the runner detected. report_digest()
// folds every row into one value — two campaigns executed with different
// worker counts must produce the same digest, which is itself one of the
// subsystem's tested invariants.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "scenario/spec.hpp"
#include "scenario/workloads.hpp"

namespace dear::scenario {

/// Cache-line aligned: campaign workers write neighbouring slots of the
/// preallocated result matrix concurrently, and without the alignment two
/// workers' outcome stores false-share one line around every slot
/// boundary (measured against the batch runner's claim cursor).
struct alignas(64) ScenarioResult {
  ScenarioSpec spec;
  RunOutcome outcome;
  /// Host wall-clock seconds this run took (not part of report_digest()).
  double wall_seconds{0.0};
  /// Whether the run participated in a digest-invariance group.
  bool determinism_checked{false};
};

struct CampaignReport {
  std::string name;
  std::uint64_t campaign_seed{0};
  std::size_t workers{1};
  double wall_seconds{0.0};

  /// Rows in scenario-matrix order.
  std::vector<ScenarioResult> results;

  /// Digest-invariance groups among expect_deterministic() scenarios.
  std::size_t determinism_groups{0};
  std::size_t determinism_checked_runs{0};
  /// Human-readable invariant violations (empty = all invariants hold).
  std::vector<std::string> violations;

  [[nodiscard]] bool invariants_ok() const noexcept { return violations.empty(); }

  /// Error-prevalence spread of the nondet runs (the Figure 5 contrast).
  [[nodiscard]] common::RunningStats nondet_prevalence() const;

  /// Campaign throughput in scenarios per second.
  [[nodiscard]] double scenarios_per_second() const noexcept {
    return wall_seconds > 0.0 ? static_cast<double>(results.size()) / wall_seconds : 0.0;
  }

  /// Order-sensitive digest over every scenario's outcome, in matrix
  /// order. Identical across worker counts by construction.
  [[nodiscard]] std::uint64_t report_digest() const;

  /// Machine-readable report (stable schema, no external deps).
  [[nodiscard]] std::string to_json() const;

  /// Human-readable summary table for consoles and CI logs.
  [[nodiscard]] std::string to_table() const;
};

}  // namespace dear::scenario
