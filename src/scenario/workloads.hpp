// Workload factories: ScenarioSpec → one full DES run.
//
// Each factory maps the declarative spec onto the configuration struct of
// one of the three case-study pipelines (all assembled via
// dear::AppBuilder resp. the classic wiring) and normalizes the
// pipeline-specific result into a RunOutcome the campaign engine can
// aggregate and compare across workloads.
#pragma once

#include <cstdint>

#include "acc/pipeline.hpp"
#include "brake/dear_pipeline.hpp"
#include "brake/nondet_pipeline.hpp"
#include "scenario/spec.hpp"

namespace dear::scenario {

/// Workload-agnostic outcome of one scenario run.
struct RunOutcome {
  /// Sensor samples that entered the pipeline (frames resp. scans).
  std::uint64_t samples_in{0};
  /// Samples that reached the sink (EBA resp. actuator).
  std::uint64_t samples_out{0};
  /// Figure-5-style coordination errors (drops, mismatches).
  std::uint64_t app_errors{0};
  /// Observable DEAR protocol errors (deadline violations, tardy/dropped
  /// messages, remote errors). Zero for the nondet workload.
  std::uint64_t protocol_errors{0};
  /// Outputs differing from the drop-free reference pipeline.
  std::uint64_t wrong_outputs{0};
  /// Injected sensor faults (dropped + stuck + noisy samples).
  std::uint64_t sensor_faults_injected{0};
  /// Deadline violations alone (also counted in protocol_errors): the
  /// runtime side of the static deadline-miss oracle (DEAR-TIME-001 /
  /// DEAR-LAT-002). Deliberately NOT folded into the campaign report
  /// digest — the digest's input set is pinned.
  std::uint64_t deadline_violations{0};
  /// Fault-tolerance accounting (ft/fault_model.hpp; zero when the
  /// scenario injects no service faults). Report/JSON columns only —
  /// deliberately NOT folded into the campaign report digest.
  std::uint64_t ft_crash_drops{0};
  std::uint64_t ft_call_faults{0};
  std::uint64_t ft_retries{0};
  std::uint64_t ft_degraded_ticks{0};
  std::uint64_t ft_failovers{0};
  /// Order-sensitive digest over the sink outputs.
  std::uint64_t output_digest{0};
  /// Digest over sink tags relative to sensor tags (reactor workloads).
  std::uint64_t tag_digest{0};
  /// End-to-end latency stats in ns (brake workloads; 0 when untracked).
  double latency_mean_ns{0.0};
  double latency_max_ns{0.0};

  [[nodiscard]] std::uint64_t total_errors() const noexcept {
    return app_errors + protocol_errors + wrong_outputs;
  }

  [[nodiscard]] double error_prevalence_percent() const noexcept {
    if (samples_in == 0) {
      return 0.0;
    }
    return 100.0 * static_cast<double>(app_errors) / static_cast<double>(samples_in);
  }
};

// Spec → pipeline-config mappings (exposed for tests and ad-hoc harnesses).
[[nodiscard]] brake::DearScenarioConfig to_dear_config(const ScenarioSpec& spec);
[[nodiscard]] brake::ScenarioConfig to_nondet_config(const ScenarioSpec& spec);
[[nodiscard]] acc::AccScenarioConfig to_acc_config(const ScenarioSpec& spec);

/// Executes one scenario to completion. Pure: every rng stream derives
/// from the spec's seeds, no state is shared between calls, so concurrent
/// invocations from the campaign worker pool are independent.
[[nodiscard]] RunOutcome run_scenario(const ScenarioSpec& spec);

}  // namespace dear::scenario
