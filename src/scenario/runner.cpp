#include "scenario/runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "analysis/analyzer.hpp"
#include "obs/obs.hpp"

namespace dear::scenario {

namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

[[nodiscard]] std::uint64_t counter_delta(
    const std::array<std::uint64_t, obs::kCounterCount>& before,
    const std::array<std::uint64_t, obs::kCounterCount>& after, obs::Counter c) {
  const auto i = static_cast<std::size_t>(c);
  return after[i] - before[i];
}

/// Samples the worker-local metric deltas around one scenario run. All of
/// the scenario's runtime objects are destroyed inside run_scenario, so
/// their teardown flushes are visible in the after-read on this thread.
[[nodiscard]] ScenarioObs sample_obs(const std::array<std::uint64_t, obs::kCounterCount>& before,
                                     const std::array<std::uint64_t, obs::kCounterCount>& after) {
  ScenarioObs obs_row;
  obs_row.sampled = true;
  obs_row.worker = obs::Registry::local_ordinal();
  obs_row.sim_events = counter_delta(before, after, obs::Counter::kSimEventsProcessed);
  obs_row.net_packets = counter_delta(before, after, obs::Counter::kNetPacketsSent);
  obs_row.net_drops = counter_delta(before, after, obs::Counter::kNetPacketsDropped);
  obs_row.net_dups = counter_delta(before, after, obs::Counter::kNetPacketsDuplicated);
  obs_row.msgs_sent = counter_delta(before, after, obs::Counter::kSomeipMsgsSent) +
                      counter_delta(before, after, obs::Counter::kLocalMsgsSent);
  obs_row.msgs_received = counter_delta(before, after, obs::Counter::kSomeipMsgsReceived) +
                          counter_delta(before, after, obs::Counter::kLocalMsgsReceived);
  obs_row.wire_bytes = counter_delta(before, after, obs::Counter::kSomeipBytesSent);
  obs_row.shelf_locks = counter_delta(before, after, obs::Counter::kPoolSmallShelfLocks) +
                        counter_delta(before, after, obs::Counter::kPoolBufferShelfLocks);
  return obs_row;
}

/// Evaluates the digest-invariance groups in place. Scenario order within
/// `report.results` is matrix order, so the reference member of each
/// group (its first row) is stable across worker counts.
void check_invariants(CampaignReport& report) {
  struct Group {
    std::uint64_t reference_index{0};
    std::uint64_t output_digest{0};
    std::uint64_t tag_digest{0};
    std::size_t members{0};
  };
  std::map<std::uint64_t, Group> groups;
  for (ScenarioResult& row : report.results) {
    if (!row.spec.expect_deterministic()) {
      continue;
    }
    row.determinism_checked = true;
    ++report.determinism_checked_runs;
    const std::uint64_t key = row.spec.digest_group();
    auto [it, inserted] = groups.try_emplace(key);
    Group& group = it->second;
    if (inserted) {
      group.reference_index = row.spec.index;
      group.output_digest = row.outcome.output_digest;
      group.tag_digest = row.outcome.tag_digest;
    }
    ++group.members;
    if (row.outcome.output_digest != group.output_digest ||
        row.outcome.tag_digest != group.tag_digest) {
      char buffer[256];
      std::snprintf(buffer, sizeof(buffer),
                    "scenario %" PRIu64 " (%s): digests %016" PRIx64 "/%016" PRIx64
                    " differ from group reference scenario %" PRIu64 " (%016" PRIx64
                    "/%016" PRIx64 ")",
                    row.spec.index, row.spec.name.c_str(), row.outcome.output_digest,
                    row.outcome.tag_digest, group.reference_index, group.output_digest,
                    group.tag_digest);
      report.violations.emplace_back(buffer);
    }
  }
  report.determinism_groups = groups.size();
}

/// Derives one TimingVerdict from a static analysis report.
[[nodiscard]] TimingVerdict to_verdict(const analysis::Report& analyzed) {
  TimingVerdict verdict;
  verdict.evaluated = true;
  for (const analysis::Diagnostic& diagnostic : analyzed.diagnostics) {
    if (diagnostic.rule == analysis::Rule::kDeadlineBelowWcet ||
        diagnostic.rule == analysis::Rule::kChainWcetExceedsDeadline) {
      verdict.predicted_deadline_miss = true;
    }
    if (diagnostic.rule == analysis::Rule::kChainBudgetExceeded) {
      verdict.budget_exceeded = true;
    }
  }
  for (const analysis::ChainBound& chain : analyzed.timing.chains) {
    if (chain.logical_latency > verdict.chain_latency_max_ns) {
      verdict.chain_latency_max_ns = chain.logical_latency;
      verdict.chain_budget_ns = chain.budget;
    }
  }
  return verdict;
}

/// Annotates every row with the static timing verdict. The fact table
/// only depends on the workload and the two timing scales, so the
/// (build-only) app construction is memoized on that key.
void annotate_timing(CampaignReport& report) {
  std::map<std::string, TimingVerdict> memo;
  for (ScenarioResult& row : report.results) {
    char key[96];
    std::snprintf(key, sizeof(key), "%s|%.6f|%.6f",
                  std::string(to_string(row.spec.workload)).c_str(), row.spec.deadline_scale,
                  row.spec.exec_time_scale);
    auto [it, inserted] = memo.try_emplace(key);
    if (inserted) {
      analysis::AnalyzeOptions options;
      options.timing = true;
      it->second = to_verdict(analysis::analyze_spec(row.spec, options));
    }
    row.timing = it->second;
  }
}

}  // namespace

std::size_t CampaignRunner::worker_count() const noexcept {
  if (options_.workers != 0) {
    return options_.workers;
  }
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware != 0 ? hardware : 1;
}

CampaignReport CampaignRunner::run(const CampaignSpec& campaign) const {
  return run(campaign.name, campaign.expand(), campaign.campaign_seed);
}

CampaignReport CampaignRunner::run(std::string name, std::vector<ScenarioSpec> scenarios,
                                   std::uint64_t campaign_seed) const {
  CampaignReport report;
  report.name = std::move(name);
  report.campaign_seed = campaign_seed;
  report.workers = worker_count();

  report.results.resize(scenarios.size());
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    scenarios[i].index = i;
    if (scenarios[i].name.empty()) {
      scenarios[i].name = scenarios[i].describe();
    }
    report.results[i].spec = std::move(scenarios[i]);
  }

  const obs::SpanScope campaign_span(obs::SpanCategory::kCampaign, report.name);
  const auto batch_start = Clock::now();
  // Workers claim scenarios off a shared cursor in small batches and write
  // into their (cache-line aligned) matrix slots; no other cross-thread
  // state exists, so the report is independent of claim order by
  // construction. Each worker's memory traffic stays in its own
  // thread-local pool magazines (SmallBlockPool/BufferPool): the first
  // scenario warms them, every later scenario reuses them as a per-worker
  // scratch arena, and the registered drain returns them to the global
  // shelves when the worker exits — steady state touches no shared
  // allocator state at all (asserted by tests/perf/alloc_count_test.cpp).
  const std::size_t total = report.results.size();
  std::atomic<std::size_t> cursor{0};
  // Never oversubscribe the machine: scenarios are CPU-bound, so a pool
  // beyond the core count only adds context-switch and cache-thrash
  // overhead (the old 2-worker-slower-than-serial row on a 1-core host).
  // report.workers keeps the *requested* count — results are worker-count
  // independent by construction, so the effective pool size is purely a
  // wall-time decision.
  const unsigned hardware = std::thread::hardware_concurrency();
  const std::size_t pool_size =
      std::min({report.workers, std::max<std::size_t>(total, 1),
                static_cast<std::size_t>(hardware != 0 ? hardware : 1)});
  // Batched claims amortize the cursor; capped so the tail stays balanced.
  const std::size_t claim =
      std::clamp<std::size_t>(total / (std::max<std::size_t>(pool_size, 1) * 16), 1, 8);
  auto work = [&]() {
    while (true) {
      const std::size_t begin = cursor.fetch_add(claim, std::memory_order_relaxed);
      if (begin >= total) {
        return;
      }
      const std::size_t end = std::min(begin + claim, total);
      for (std::size_t i = begin; i < end; ++i) {
        ScenarioResult& slot = report.results[i];
        const bool sampling = obs::Registry::metrics_enabled();
        std::array<std::uint64_t, obs::kCounterCount> before{};
        if (sampling) {
          obs::Registry::read_local_counters(before);
        }
        const auto start = Clock::now();
        {
          const obs::SpanScope span(obs::SpanCategory::kScenario, slot.spec.name);
          slot.outcome = run_scenario(slot.spec);
        }
        slot.wall_seconds = seconds_since(start);
        if (sampling) {
          std::array<std::uint64_t, obs::kCounterCount> after{};
          obs::Registry::read_local_counters(after);
          slot.obs = sample_obs(before, after);
          obs::count(obs::Counter::kCampaignScenarios);
          obs::observe(obs::Hist::kCampaignScenarioWallMs, slot.wall_seconds * 1e3);
        }
      }
    }
  };
  if (pool_size <= 1) {
    work();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(pool_size);
    for (std::size_t w = 0; w < pool_size; ++w) {
      pool.emplace_back(work);
    }
    for (std::thread& worker : pool) {
      worker.join();
    }
  }
  report.wall_seconds = seconds_since(batch_start);

  if (options_.check_invariants) {
    check_invariants(report);
  }
  if (options_.annotate_timing) {
    annotate_timing(report);
  }
  return report;
}

}  // namespace dear::scenario
