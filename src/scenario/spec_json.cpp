#include "scenario/spec_json.hpp"

#include <algorithm>
#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace dear::scenario {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  [[nodiscard]] bool failed() const noexcept { return failed_; }
  [[nodiscard]] const std::string& error() const noexcept { return error_; }

  /// Names the key whose value is being parsed, so type errors point at
  /// the offending field ("key 'frames': expected number ...").
  void set_context(std::string context) { context_ = std::move(context); }

  void fail(const std::string& message) {
    if (!failed_) {
      failed_ = true;
      error_ = (context_.empty() ? std::string() : "key '" + context_ + "': ") + message +
               " (at offset " + std::to_string(pos_) + ")";
    }
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  [[nodiscard]] bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char c) {
    if (!consume(c)) {
      fail(std::string("expected '") + c + "'");
    }
  }

  [[nodiscard]] std::string parse_string() {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      fail("expected string");
      return {};
    }
    ++pos_;
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        const char escaped = text_[pos_++];
        switch (escaped) {
          case 'n':
            c = '\n';
            break;
          case 't':
            c = '\t';
            break;
          default:
            c = escaped;
            break;
        }
      }
      out += c;
    }
    if (pos_ >= text_.size()) {
      fail("unterminated string");
      return {};
    }
    ++pos_;  // closing quote
    return out;
  }

  [[nodiscard]] double parse_number() {
    skip_ws();
    const char* begin = text_.data() + pos_;
    char* end = nullptr;
    const double value = std::strtod(begin, &end);
    if (end == begin) {
      fail("expected number");
      return 0.0;
    }
    pos_ += static_cast<std::size_t>(end - begin);
    return value;
  }

  [[nodiscard]] bool parse_bool() {
    skip_ws();
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return false;
    }
    fail("expected boolean");
    return false;
  }

  [[nodiscard]] bool at_end() {
    skip_ws();
    return pos_ >= text_.size();
  }

 private:
  std::string_view text_;
  std::size_t pos_{0};
  bool failed_{false};
  std::string error_;
  std::string context_;
};

void parse_sensor_faults(Parser& parser, sim::SensorFaultModel& faults) {
  parser.expect('{');
  if (parser.consume('}')) {
    return;
  }
  std::vector<std::string> seen;
  do {
    parser.set_context({});
    const std::string key = parser.parse_string();
    parser.expect(':');
    if (parser.failed()) {
      return;
    }
    if (std::find(seen.begin(), seen.end(), key) != seen.end()) {
      parser.fail("duplicate sensor_faults key '" + key + "'");
      return;
    }
    seen.push_back(key);
    parser.set_context("sensor_faults." + key);
    if (key == "drop_probability") {
      faults.drop_probability = parser.parse_number();
    } else if (key == "stuck_probability") {
      faults.stuck_probability = parser.parse_number();
    } else if (key == "noise_probability") {
      faults.noise_probability = parser.parse_number();
    } else {
      parser.set_context({});
      parser.fail("unknown sensor_faults key '" + key + "'");
      return;
    }
  } while (parser.consume(','));
  parser.set_context({});
  parser.expect('}');
}

void parse_service_faults(Parser& parser, ft::ServiceFaultModel& faults) {
  parser.expect('{');
  if (parser.consume('}')) {
    return;
  }
  std::vector<std::string> seen;
  do {
    parser.set_context({});
    const std::string key = parser.parse_string();
    parser.expect(':');
    if (parser.failed()) {
      return;
    }
    if (std::find(seen.begin(), seen.end(), key) != seen.end()) {
      parser.fail("duplicate service_faults key '" + key + "'");
      return;
    }
    seen.push_back(key);
    parser.set_context("service_faults." + key);
    if (key == "crash_at_ns") {
      faults.crash_at = static_cast<Duration>(parser.parse_number());
    } else if (key == "restart_after_ns") {
      faults.restart_after = static_cast<Duration>(parser.parse_number());
    } else if (key == "call_error_probability") {
      faults.call_error_probability = parser.parse_number();
    } else if (key == "call_omission_probability") {
      faults.call_omission_probability = parser.parse_number();
    } else if (key == "churn_period_ns") {
      faults.churn_period = static_cast<Duration>(parser.parse_number());
    } else {
      parser.set_context({});
      parser.fail("unknown service_faults key '" + key + "'");
      return;
    }
  } while (parser.consume(','));
  parser.set_context({});
  parser.expect('}');
}

void parse_retry(Parser& parser, ft::RetryBudget& retry) {
  parser.expect('{');
  if (parser.consume('}')) {
    return;
  }
  std::vector<std::string> seen;
  do {
    parser.set_context({});
    const std::string key = parser.parse_string();
    parser.expect(':');
    if (parser.failed()) {
      return;
    }
    if (std::find(seen.begin(), seen.end(), key) != seen.end()) {
      parser.fail("duplicate retry key '" + key + "'");
      return;
    }
    seen.push_back(key);
    parser.set_context("retry." + key);
    if (key == "max_attempts") {
      retry.max_attempts = static_cast<std::uint32_t>(parser.parse_number());
    } else if (key == "backoff_base_ns") {
      retry.backoff_base = static_cast<Duration>(parser.parse_number());
    } else if (key == "timeout_ns") {
      retry.timeout = static_cast<Duration>(parser.parse_number());
    } else {
      parser.set_context({});
      parser.fail("unknown retry key '" + key + "'");
      return;
    }
  } while (parser.consume(','));
  parser.set_context({});
  parser.expect('}');
}

}  // namespace

std::string spec_to_json(const ScenarioSpec& spec) {
  char buffer[256];
  std::string out = "{\n";
  out += "  \"name\": \"" + spec.name + "\",\n";
  std::snprintf(buffer, sizeof(buffer), "  \"index\": %" PRIu64 ",\n", spec.index);
  out += buffer;
  out += "  \"workload\": \"" + std::string(to_string(spec.workload)) + "\",\n";
  out += "  \"transport\": \"" + std::string(to_string(spec.transport)) + "\",\n";
  std::snprintf(buffer, sizeof(buffer),
                "  \"frames\": %" PRIu64 ",\n  \"platform_seed\": %" PRIu64
                ",\n  \"sensor_seed\": %" PRIu64 ",\n",
                spec.frames, spec.platform_seed, spec.sensor_seed);
  out += buffer;
  std::snprintf(buffer, sizeof(buffer), "  \"clock_drift_ppm\": %.6g,\n", spec.clock_drift_ppm);
  out += buffer;
  std::snprintf(buffer, sizeof(buffer),
                "  \"svc_latency_min_ns\": %" PRId64 ",\n  \"svc_latency_max_ns\": %" PRId64
                ",\n",
                static_cast<std::int64_t>(spec.svc_latency_min),
                static_cast<std::int64_t>(spec.svc_latency_max));
  out += buffer;
  std::snprintf(buffer, sizeof(buffer),
                "  \"net_drop_probability\": %.6g,\n  \"net_duplicate_probability\": %.6g,\n",
                spec.net_drop_probability, spec.net_duplicate_probability);
  out += buffer;
  out += std::string("  \"net_in_order\": ") + (spec.net_in_order ? "true" : "false") + ",\n";
  std::snprintf(buffer, sizeof(buffer),
                "  \"exec_time_scale\": %.6g,\n  \"deadline_scale\": %.6g,\n",
                spec.exec_time_scale, spec.deadline_scale);
  out += buffer;
  std::snprintf(buffer, sizeof(buffer),
                "  \"sensor_faults\": {\"drop_probability\": %.6g, \"stuck_probability\": %.6g, "
                "\"noise_probability\": %.6g},\n",
                spec.sensor_faults.drop_probability, spec.sensor_faults.stuck_probability,
                spec.sensor_faults.noise_probability);
  out += buffer;
  std::snprintf(buffer, sizeof(buffer),
                "  \"service_faults\": {\"crash_at_ns\": %" PRId64 ", \"restart_after_ns\": %" PRId64
                ", \"call_error_probability\": %.6g, \"call_omission_probability\": %.6g, "
                "\"churn_period_ns\": %" PRId64 "},\n",
                static_cast<std::int64_t>(spec.service_faults.crash_at),
                static_cast<std::int64_t>(spec.service_faults.restart_after),
                spec.service_faults.call_error_probability,
                spec.service_faults.call_omission_probability,
                static_cast<std::int64_t>(spec.service_faults.churn_period));
  out += buffer;
  std::snprintf(buffer, sizeof(buffer),
                "  \"retry\": {\"max_attempts\": %u, \"backoff_base_ns\": %" PRId64
                ", \"timeout_ns\": %" PRId64 "},\n  \"fault_seed\": %" PRIu64 ",\n",
                spec.retry.max_attempts, static_cast<std::int64_t>(spec.retry.backoff_base),
                static_cast<std::int64_t>(spec.retry.timeout), spec.fault_seed);
  out += buffer;
  std::snprintf(buffer, sizeof(buffer), "  \"camera_payload_bytes\": %" PRIu64 "\n",
                spec.camera_payload_bytes);
  out += buffer;
  out += "}\n";
  return out;
}

std::optional<ScenarioSpec> spec_from_json(std::string_view text, std::string* error) {
  Parser parser(text);
  ScenarioSpec spec;
  parser.expect('{');
  const bool empty = parser.consume('}');
  if (!empty) {
    std::vector<std::string> seen;
    do {
      parser.set_context({});
      const std::string key = parser.parse_string();
      parser.expect(':');
      if (parser.failed()) {
        break;
      }
      if (std::find(seen.begin(), seen.end(), key) != seen.end()) {
        parser.fail("duplicate key '" + key + "'");
        break;
      }
      seen.push_back(key);
      parser.set_context(key);
      if (key == "name") {
        spec.name = parser.parse_string();
      } else if (key == "index") {
        spec.index = static_cast<std::uint64_t>(parser.parse_number());
      } else if (key == "workload") {
        const std::string value = parser.parse_string();
        if (value == "dear") {
          spec.workload = Workload::kBrakeDear;
        } else if (value == "nondet") {
          spec.workload = Workload::kBrakeNondet;
        } else if (value == "acc") {
          spec.workload = Workload::kAcc;
        } else {
          parser.fail("unknown workload '" + value + "'");
        }
      } else if (key == "transport") {
        const std::string value = parser.parse_string();
        if (value == "someip") {
          spec.transport = Transport::kSomeIp;
        } else if (value == "local") {
          spec.transport = Transport::kLocal;
        } else {
          parser.fail("unknown transport '" + value + "'");
        }
      } else if (key == "frames") {
        spec.frames = static_cast<std::uint64_t>(parser.parse_number());
      } else if (key == "platform_seed") {
        spec.platform_seed = static_cast<std::uint64_t>(parser.parse_number());
      } else if (key == "sensor_seed") {
        spec.sensor_seed = static_cast<std::uint64_t>(parser.parse_number());
      } else if (key == "clock_drift_ppm") {
        spec.clock_drift_ppm = parser.parse_number();
      } else if (key == "svc_latency_min_ns") {
        spec.svc_latency_min = static_cast<Duration>(parser.parse_number());
      } else if (key == "svc_latency_max_ns") {
        spec.svc_latency_max = static_cast<Duration>(parser.parse_number());
      } else if (key == "net_drop_probability") {
        spec.net_drop_probability = parser.parse_number();
      } else if (key == "net_duplicate_probability") {
        spec.net_duplicate_probability = parser.parse_number();
      } else if (key == "net_in_order") {
        spec.net_in_order = parser.parse_bool();
      } else if (key == "exec_time_scale") {
        spec.exec_time_scale = parser.parse_number();
      } else if (key == "deadline_scale") {
        spec.deadline_scale = parser.parse_number();
      } else if (key == "sensor_faults") {
        parse_sensor_faults(parser, spec.sensor_faults);
      } else if (key == "service_faults") {
        parse_service_faults(parser, spec.service_faults);
      } else if (key == "retry") {
        parse_retry(parser, spec.retry);
      } else if (key == "fault_seed") {
        spec.fault_seed = static_cast<std::uint64_t>(parser.parse_number());
      } else if (key == "camera_payload_bytes") {
        spec.camera_payload_bytes = static_cast<std::uint64_t>(parser.parse_number());
      } else {
        parser.set_context({});
        parser.fail("unknown key '" + key + "'");
      }
    } while (!parser.failed() && parser.consume(','));
    if (!parser.failed()) {
      parser.set_context({});
      parser.expect('}');
    }
  }
  parser.set_context({});
  if (!parser.failed() && !parser.at_end()) {
    parser.fail("trailing content after the scenario object");
  }
  if (parser.failed()) {
    if (error != nullptr) {
      *error = parser.error();
    }
    return std::nullopt;
  }
  return spec;
}

}  // namespace dear::scenario
