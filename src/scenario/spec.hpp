// Declarative scenario descriptions for the campaign engine.
//
// A ScenarioSpec is one point in the evaluation space the paper's case
// study samples by hand: a workload (one of the three case-study
// pipelines), a transport deployment, and the full set of fault/stress
// knobs — clock drift, service-link latency/drop/duplication/ordering,
// execution-time and deadline scaling, and sensor faults. The scenario
// engine expands grids of these specs (campaign.hpp) and executes them on
// a worker pool (runner.hpp), turning the repo's hand-wired
// configurations into the ROADMAP's "as many scenarios as you can
// imagine" evaluation machine.
//
// Seeding contract (audited): every run derives its rng streams from the
// spec's two seeds only. The campaign expansion fills platform_seed as a
// pure function of (campaign seed, scenario index) and sensor_seed as a
// pure function of the campaign seed alone, so results are independent of
// worker count and thread scheduling, and scenarios that share a sensor
// configuration share the exact same input stream.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/time.hpp"
#include "ft/fault_model.hpp"
#include "sim/fault_injection.hpp"

namespace dear::scenario {

/// The case-study pipeline a scenario runs.
enum class Workload : std::uint8_t {
  /// DEAR brake assistant (paper §IV.B) — deterministic by construction.
  kBrakeDear,
  /// Stock APD brake assistant (paper §IV.A) — the Figure 5 baseline.
  kBrakeNondet,
  /// DEAR adaptive cruise-control chain (events + methods + field).
  kAcc,
};

/// Transport deployment for the service traffic.
enum class Transport : std::uint8_t { kSomeIp, kLocal };

[[nodiscard]] std::string_view to_string(Workload workload) noexcept;
[[nodiscard]] std::string_view to_string(Transport transport) noexcept;

struct ScenarioSpec {
  /// Position in the campaign's scenario matrix (filled by expansion).
  std::uint64_t index{0};
  /// Human-readable identity, derived from the knobs when empty.
  std::string name;

  Workload workload{Workload::kBrakeDear};
  Transport transport{Transport::kSomeIp};
  /// Sensor samples fed into the pipeline (frames resp. radar scans).
  std::uint64_t frames{2000};

  /// Seed for all platform-side streams (scheduling jitter, network
  /// latency, execution-time draws, clock drift). Derived from
  /// (campaign seed, scenario index) by the campaign expansion.
  std::uint64_t platform_seed{1};
  /// Seed for the sensor input stream (capture timing and fault
  /// decisions). Shared by every scenario of a campaign so that digest
  /// invariants compare like with like.
  std::uint64_t sensor_seed{5000};

  /// Sensor-platform clock drift bound (ppm).
  double clock_drift_ppm{30.0};

  // Service-link network model (the SWC-to-SWC SOME/IP traffic).
  Duration svc_latency_min{5 * kMicrosecond};
  Duration svc_latency_max{50 * kMicrosecond};
  double net_drop_probability{0.0};
  double net_duplicate_probability{0.0};
  bool net_in_order{false};

  /// Scale on the modeled SWC execution times (stress knob).
  double exec_time_scale{1.0};
  /// Scale on the transactor deadlines (latency/error trade-off knob).
  double deadline_scale{1.0};

  /// Sensor faults, applied at the camera/radar front-end (input-side).
  sim::SensorFaultModel sensor_faults{};

  /// Service faults, applied at the victim node's transport binding
  /// (crash/restart in wire-tag time, per-call error/omission, churn).
  ft::ServiceFaultModel service_faults{};
  /// Retry budget installed on the workload's tolerant proxies.
  ft::RetryBudget retry{};
  /// Seed for the per-call fault die. Derived from the campaign seed
  /// alone (like sensor_seed), so scenarios in one digest group share the
  /// exact same fault decisions.
  std::uint64_t fault_seed{1};

  /// Sensor data plane: per-frame loaned pixel slab size in bytes (0 =
  /// metadata only). Splits digest groups only when engaged — slab drops
  /// on ring exhaustion remove frames from the stream — so the idle
  /// default keeps every pre-existing group key bit-identical.
  std::uint64_t camera_payload_bytes{0};

  // --- fluent builder -------------------------------------------------------
  ScenarioSpec& with_workload(Workload value) { workload = value; return *this; }
  ScenarioSpec& with_transport(Transport value) { transport = value; return *this; }
  ScenarioSpec& with_frames(std::uint64_t value) { frames = value; return *this; }
  ScenarioSpec& with_platform_seed(std::uint64_t value) { platform_seed = value; return *this; }
  ScenarioSpec& with_sensor_seed(std::uint64_t value) { sensor_seed = value; return *this; }
  ScenarioSpec& with_clock_drift_ppm(double value) { clock_drift_ppm = value; return *this; }
  ScenarioSpec& with_svc_latency(Duration min, Duration max) {
    svc_latency_min = min;
    svc_latency_max = max;
    return *this;
  }
  ScenarioSpec& with_net_drop(double probability) {
    net_drop_probability = probability;
    return *this;
  }
  ScenarioSpec& with_net_duplicate(double probability) {
    net_duplicate_probability = probability;
    return *this;
  }
  ScenarioSpec& with_net_in_order(bool value = true) { net_in_order = value; return *this; }
  ScenarioSpec& with_exec_time_scale(double value) { exec_time_scale = value; return *this; }
  ScenarioSpec& with_deadline_scale(double value) { deadline_scale = value; return *this; }
  ScenarioSpec& with_sensor_faults(sim::SensorFaultModel value) {
    sensor_faults = value;
    return *this;
  }
  ScenarioSpec& with_service_faults(ft::ServiceFaultModel value) {
    service_faults = value;
    return *this;
  }
  ScenarioSpec& with_retry(ft::RetryBudget value) {
    retry = value;
    return *this;
  }
  ScenarioSpec& with_fault_seed(std::uint64_t value) {
    fault_seed = value;
    return *this;
  }
  ScenarioSpec& with_camera_payload_bytes(std::uint64_t value) {
    camera_payload_bytes = value;
    return *this;
  }

  /// True when the DEAR determinism guarantee applies: a reactor-based
  /// workload whose fault knobs stay within the paper's assumptions
  /// (reliable delivery, latency within the safe-to-process bound L,
  /// deadlines at or above WCET). Reordering, duplication, latency jitter
  /// within L, clock drift and *sensor* faults are all allowed — they must
  /// not change the logical results.
  [[nodiscard]] bool expect_deterministic() const noexcept;

  /// Scenarios with the same digest group must produce bit-identical
  /// output and tag digests when expect_deterministic() holds — the
  /// campaign engine's first-class invariant. The key covers exactly the
  /// knobs that may legitimately change observable behavior: workload,
  /// sample count, sensor input stream, and deadline scaling.
  [[nodiscard]] std::uint64_t digest_group() const noexcept;

  /// Derived name, e.g. "dear/someip/drop0.010/dup0.100/dl0.80/sf/s42".
  [[nodiscard]] std::string describe() const;
};

/// Worst-case service-link latency tolerated by the default transactor
/// configuration (the paper's L bound; dear/config.hpp).
inline constexpr Duration kSvcLatencyBound = 5 * kMillisecond;

/// Pure derivation of a per-scenario sub-seed from the campaign seed, the
/// scenario index and a stream label. Independent of execution order by
/// construction.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t campaign_seed, std::uint64_t scenario_index,
                                        std::string_view stream) noexcept;

}  // namespace dear::scenario
