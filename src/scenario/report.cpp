#include "scenario/report.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

#include "common/digest.hpp"

namespace dear::scenario {

namespace {

void append_format(std::string& out, const char* format, ...)
    __attribute__((format(printf, 2, 3)));

void append_format(std::string& out, const char* format, ...) {
  char buffer[512];
  va_list args;
  va_start(args, format);
  const int written = std::vsnprintf(buffer, sizeof(buffer), format, args);
  va_end(args);
  if (written > 0) {
    out.append(buffer, std::min(static_cast<std::size_t>(written), sizeof(buffer) - 1));
  }
}

/// Minimal JSON string escaping (names contain only [-/a-z0-9.] today,
/// but the report must not silently produce invalid JSON if that drifts).
[[nodiscard]] std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

common::RunningStats CampaignReport::nondet_prevalence() const {
  common::RunningStats stats;
  for (const ScenarioResult& result : results) {
    if (result.spec.workload == Workload::kBrakeNondet) {
      stats.add(result.outcome.error_prevalence_percent());
    }
  }
  return stats;
}

std::uint64_t CampaignReport::report_digest() const {
  std::uint64_t digest = campaign_seed;
  for (const ScenarioResult& result : results) {
    common::mix_digest(digest, result.spec.index);
    common::mix_digest(digest, result.outcome.output_digest);
    common::mix_digest(digest, result.outcome.tag_digest);
    common::mix_digest(digest, result.outcome.samples_in);
    common::mix_digest(digest, result.outcome.samples_out);
    common::mix_digest(digest, result.outcome.app_errors);
    common::mix_digest(digest, result.outcome.protocol_errors);
    common::mix_digest(digest, result.outcome.wrong_outputs);
  }
  common::mix_digest(digest, violations.size());
  return digest;
}

std::string CampaignReport::to_json() const {
  std::string out;
  out.reserve(512 + results.size() * 384);
  out += "{\n";
  append_format(out, "  \"campaign\": \"%s\",\n", json_escape(name).c_str());
  append_format(out, "  \"campaign_seed\": %" PRIu64 ",\n", campaign_seed);
  append_format(out, "  \"workers\": %zu,\n", workers);
  append_format(out, "  \"scenario_count\": %zu,\n", results.size());
  append_format(out, "  \"wall_seconds\": %.3f,\n", wall_seconds);
  append_format(out, "  \"scenarios_per_second\": %.2f,\n", scenarios_per_second());
  append_format(out, "  \"determinism_groups\": %zu,\n", determinism_groups);
  append_format(out, "  \"determinism_checked_runs\": %zu,\n", determinism_checked_runs);
  append_format(out, "  \"report_digest\": \"%016" PRIx64 "\",\n", report_digest());
  out += "  \"violations\": [";
  for (std::size_t i = 0; i < violations.size(); ++i) {
    append_format(out, "%s\"%s\"", i == 0 ? "" : ", ", json_escape(violations[i]).c_str());
  }
  out += "],\n";
  out += "  \"scenarios\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ScenarioResult& row = results[i];
    const RunOutcome& o = row.outcome;
    out += "    {";
    append_format(out, "\"index\": %" PRIu64 ", ", row.spec.index);
    append_format(out, "\"name\": \"%s\", ", json_escape(row.spec.name).c_str());
    append_format(out, "\"workload\": \"%s\", ",
                  std::string(to_string(row.spec.workload)).c_str());
    append_format(out, "\"transport\": \"%s\", ",
                  std::string(to_string(row.spec.transport)).c_str());
    append_format(out, "\"platform_seed\": %" PRIu64 ", ", row.spec.platform_seed);
    append_format(out, "\"sensor_seed\": %" PRIu64 ", ", row.spec.sensor_seed);
    append_format(out, "\"samples_in\": %" PRIu64 ", ", o.samples_in);
    append_format(out, "\"samples_out\": %" PRIu64 ", ", o.samples_out);
    append_format(out, "\"app_errors\": %" PRIu64 ", ", o.app_errors);
    append_format(out, "\"protocol_errors\": %" PRIu64 ", ", o.protocol_errors);
    append_format(out, "\"wrong_outputs\": %" PRIu64 ", ", o.wrong_outputs);
    append_format(out, "\"sensor_faults\": %" PRIu64 ", ", o.sensor_faults_injected);
    append_format(out, "\"ft_crash_drops\": %" PRIu64 ", ", o.ft_crash_drops);
    append_format(out, "\"ft_call_faults\": %" PRIu64 ", ", o.ft_call_faults);
    append_format(out, "\"ft_retries\": %" PRIu64 ", ", o.ft_retries);
    append_format(out, "\"ft_degraded_ticks\": %" PRIu64 ", ", o.ft_degraded_ticks);
    append_format(out, "\"ft_failovers\": %" PRIu64 ", ", o.ft_failovers);
    append_format(out, "\"error_prevalence_percent\": %.4f, ", o.error_prevalence_percent());
    append_format(out, "\"output_digest\": \"%016" PRIx64 "\", ", o.output_digest);
    append_format(out, "\"tag_digest\": \"%016" PRIx64 "\", ", o.tag_digest);
    append_format(out, "\"latency_mean_ns\": %.0f, ", o.latency_mean_ns);
    append_format(out, "\"latency_max_ns\": %.0f, ", o.latency_max_ns);
    append_format(out, "\"deadline_violations\": %" PRIu64 ", ", o.deadline_violations);
    append_format(out, "\"deterministic_group\": %s, ",
                  row.determinism_checked ? "true" : "false");
    if (row.timing.evaluated) {
      append_format(out, "\"predicted_deadline_miss\": %s, ",
                    row.timing.predicted_deadline_miss ? "true" : "false");
      append_format(out, "\"chain_latency_max_ns\": %" PRId64 ", ",
                    row.timing.chain_latency_max_ns);
      append_format(out, "\"chain_budget_ns\": %" PRId64 ", ", row.timing.chain_budget_ns);
      append_format(out, "\"budget_exceeded\": %s, ",
                    row.timing.budget_exceeded ? "true" : "false");
    }
    if (row.obs.sampled) {
      append_format(out, "\"obs\": {\"worker\": %u, \"sim_events\": %" PRIu64
                         ", \"net_packets\": %" PRIu64 ", \"net_drops\": %" PRIu64
                         ", \"net_dups\": %" PRIu64 ", \"msgs_sent\": %" PRIu64
                         ", \"msgs_received\": %" PRIu64 ", \"wire_bytes\": %" PRIu64
                         ", \"shelf_locks\": %" PRIu64 "}, ",
                    row.obs.worker, row.obs.sim_events, row.obs.net_packets, row.obs.net_drops,
                    row.obs.net_dups, row.obs.msgs_sent, row.obs.msgs_received,
                    row.obs.wire_bytes, row.obs.shelf_locks);
    }
    append_format(out, "\"wall_seconds\": %.4f", row.wall_seconds);
    out += i + 1 < results.size() ? "},\n" : "}\n";
  }
  out += "  ]\n}\n";
  return out;
}

std::string CampaignReport::to_table() const {
  std::string out;
  out.reserve(256 + results.size() * 160);
  append_format(out, "campaign '%s': %zu scenarios, %zu workers, %.2fs (%.1f scenarios/s)\n",
                name.c_str(), results.size(), workers, wall_seconds, scenarios_per_second());
  append_format(out, "  %-5s %-44s %9s %9s %8s %8s %8s %9s %16s\n", "#", "scenario", "in", "out",
                "appErr", "protoErr", "wrong", "prev(%)", "outputDigest");
  for (const ScenarioResult& row : results) {
    const RunOutcome& o = row.outcome;
    std::string label = row.spec.name;
    if (label.size() > 44) {
      label.resize(44);
    }
    append_format(out, "  %-5" PRIu64 " %-44s %9" PRIu64 " %9" PRIu64 " %8" PRIu64 " %8" PRIu64
                       " %8" PRIu64 " %9.3f %016" PRIx64 "%s\n",
                  row.spec.index, label.c_str(), o.samples_in, o.samples_out, o.app_errors,
                  o.protocol_errors, o.wrong_outputs, o.error_prevalence_percent(),
                  o.output_digest, row.determinism_checked ? " *" : "");
  }
  // Static-vs-dynamic timing cross-check: the analyzer's predicted worst
  // chain latency next to the latency the run actually observed, one row
  // per timing-annotated scenario with latency tracking.
  bool timing_header = false;
  for (const ScenarioResult& row : results) {
    if (!row.timing.evaluated || row.outcome.latency_max_ns <= 0.0) {
      continue;
    }
    if (!timing_header) {
      append_format(out, "  %-5s %-44s %14s %14s %9s\n", "#", "timing (static vs observed)",
                    "predicted_ns", "observed_ns", "ratio");
      timing_header = true;
    }
    const double predicted = static_cast<double>(row.timing.chain_latency_max_ns);
    append_format(out, "  %-5" PRIu64 " %-44s %14" PRId64 " %14.0f %9.2f\n", row.spec.index,
                  row.spec.name.size() > 44 ? row.spec.name.substr(0, 44).c_str()
                                            : row.spec.name.c_str(),
                  row.timing.chain_latency_max_ns, row.outcome.latency_max_ns,
                  predicted > 0.0 ? row.outcome.latency_max_ns / predicted : 0.0);
  }
  const common::RunningStats nondet = nondet_prevalence();
  if (nondet.count() > 0) {
    append_format(out,
                  "  nondet error prevalence over %" PRIu64
                  " runs: min %.3f%%  mean %.3f%%  max %.3f%%\n",
                  nondet.count(), nondet.min(), nondet.mean(), nondet.max());
  }
  append_format(out, "  determinism: %zu runs in %zu digest groups, %zu violation(s)\n",
                determinism_checked_runs, determinism_groups, violations.size());
  for (const std::string& violation : violations) {
    append_format(out, "  VIOLATION: %s\n", violation.c_str());
  }
  append_format(out, "  report digest: %016" PRIx64 "  (* = digest-invariance checked)\n",
                report_digest());
  return out;
}

}  // namespace dear::scenario
