// Predefined campaign grids shared by the campaign runner example, the
// CI smoke campaign, the throughput benchmark and the test suite — one
// place to grow the standard evaluation matrices instead of re-declaring
// them per harness.
#pragma once

#include <cstdint>

#include "scenario/campaign.hpp"

namespace dear::scenario::presets {

/// 16-scenario smoke grid (CI): DEAR + nondet brake over drop/duplication
/// corners, two platform-timing replicas each.
[[nodiscard]] CampaignSpec smoke(std::uint64_t frames, std::uint64_t campaign_seed);

/// 96-scenario fault sweep: all three workloads x both transports x
/// drop/duplication corners x sensor-fault corner, two replicas.
[[nodiscard]] CampaignSpec fault_sweep(std::uint64_t frames, std::uint64_t campaign_seed);

/// 48-scenario fault-tolerance sweep: DEAR brake + ACC x both transports
/// x two service-fault models (clean crash/restart; crash + per-call
/// error/omission faults) x three retry budgets (disabled, 2 attempts,
/// 3 attempts), two replicas. Every scenario expects determinism: crash
/// windows are wire-tag intervals and the call-fault die is a pure
/// function of logical identities, so digests must be bit-identical
/// across platform seeds, transports and worker counts.
[[nodiscard]] CampaignSpec fault_tolerance_sweep(std::uint64_t frames,
                                                 std::uint64_t campaign_seed);

/// 16-scenario fault-tolerance smoke grid (CI): the sweep's corners with
/// a single retry budget.
[[nodiscard]] CampaignSpec fault_tolerance_smoke(std::uint64_t frames,
                                                 std::uint64_t campaign_seed);

/// Homogeneous DEAR grid of `scenario_count` platform-timing replicas —
/// every run lands in one digest group, which makes it both the
/// batch-throughput benchmark workload and the strongest digest-invariance
/// check (N scenarios, N distinct platform seeds, one digest).
[[nodiscard]] CampaignSpec throughput(std::uint64_t scenario_count, std::uint64_t frames,
                                      std::uint64_t campaign_seed);

}  // namespace dear::scenario::presets
