#include "scenario/spec.hpp"

#include <cinttypes>
#include <cstdio>

namespace dear::scenario {

std::string_view to_string(Workload workload) noexcept {
  switch (workload) {
    case Workload::kBrakeDear:
      return "dear";
    case Workload::kBrakeNondet:
      return "nondet";
    case Workload::kAcc:
      return "acc";
  }
  return "unknown";
}

std::string_view to_string(Transport transport) noexcept {
  switch (transport) {
    case Transport::kSomeIp:
      return "someip";
    case Transport::kLocal:
      return "local";
  }
  return "unknown";
}

bool ScenarioSpec::expect_deterministic() const noexcept {
  if (workload == Workload::kBrakeNondet) {
    return false;
  }
  // Injected service faults stay inside the guarantee: crash windows are
  // wire-tag intervals and the per-call die is a pure function of
  // (fault_seed, client, session) — both identical across transports,
  // platform seeds and worker counts. Subscription churn is the exception:
  // its unsubscribe/resubscribe windows are physical-time, so churn
  // scenarios leave the digest-invariance groups.
  return net_drop_probability == 0.0 && svc_latency_max <= kSvcLatencyBound &&
         deadline_scale >= 1.0 && exec_time_scale <= 1.0 && service_faults.churn_period == 0;
}

std::uint64_t ScenarioSpec::digest_group() const noexcept {
  std::uint64_t state = common::fnv1a(to_string(workload));
  const auto mix = [&state](std::uint64_t value) {
    state ^= value + 0x9e3779b97f4a7c15ULL;
    std::uint64_t s = state;
    state = common::splitmix64(s);
  };
  mix(frames);
  mix(sensor_seed);
  const auto bits = [](double value) {
    std::uint64_t out = 0;
    static_assert(sizeof(out) == sizeof(value));
    __builtin_memcpy(&out, &value, sizeof(out));
    return out;
  };
  mix(bits(sensor_faults.drop_probability));
  mix(bits(sensor_faults.stuck_probability));
  mix(bits(sensor_faults.noise_probability));
  mix(bits(deadline_scale));
  // The data plane enters the key only when engaged (same rule as the
  // service-fault block below): slab-ring exhaustion drops frames, so the
  // payload size may legitimately change the stream, while the idle
  // default leaves every pre-existing group key bit-identical.
  if (camera_payload_bytes != 0) {
    mix(camera_payload_bytes);
  }
  // Service faults and retry budgets legitimately change observable
  // behavior, so they split the groups — but only when actually engaged,
  // which keeps every pre-existing group key bit-identical.
  if (service_faults.any() || retry.enabled()) {
    mix(static_cast<std::uint64_t>(service_faults.crash_at));
    mix(static_cast<std::uint64_t>(service_faults.restart_after));
    mix(bits(service_faults.call_error_probability));
    mix(bits(service_faults.call_omission_probability));
    mix(static_cast<std::uint64_t>(service_faults.churn_period));
    mix(retry.max_attempts);
    mix(static_cast<std::uint64_t>(retry.backoff_base));
    mix(static_cast<std::uint64_t>(retry.timeout));
    mix(fault_seed);
  }
  return state;
}

std::string ScenarioSpec::describe() const {
  char buffer[160];
  std::snprintf(buffer, sizeof(buffer),
                "%s/%s/drop%.3f/dup%.3f/lat%" PRId64 "-%" PRId64 "us/dl%.2f/xt%.2f",
                std::string(to_string(workload)).c_str(),
                std::string(to_string(transport)).c_str(), net_drop_probability,
                net_duplicate_probability, svc_latency_min / kMicrosecond,
                svc_latency_max / kMicrosecond, deadline_scale, exec_time_scale);
  std::string out(buffer);
  if (sensor_faults.any()) {
    std::snprintf(buffer, sizeof(buffer), "/sf-d%.3f-s%.3f-n%.3f", sensor_faults.drop_probability,
                  sensor_faults.stuck_probability, sensor_faults.noise_probability);
    out += buffer;
  }
  if (service_faults.any()) {
    std::snprintf(buffer, sizeof(buffer), "/ft-c%" PRId64 "-r%" PRId64 "-e%.3f-o%.3f",
                  service_faults.crash_at / kMillisecond, service_faults.restart_after / kMillisecond,
                  service_faults.call_error_probability, service_faults.call_omission_probability);
    out += buffer;
    if (service_faults.churn_period > 0) {
      std::snprintf(buffer, sizeof(buffer), "-ch%" PRId64,
                    service_faults.churn_period / kMillisecond);
      out += buffer;
    }
  }
  if (retry.enabled()) {
    std::snprintf(buffer, sizeof(buffer), "/rt%u-b%" PRId64 "-t%" PRId64, retry.max_attempts,
                  retry.backoff_base / kMillisecond, retry.timeout / kMillisecond);
    out += buffer;
  }
  if (camera_payload_bytes != 0) {
    std::snprintf(buffer, sizeof(buffer), "/px%" PRIu64, camera_payload_bytes);
    out += buffer;
  }
  std::snprintf(buffer, sizeof(buffer), "/i%" PRIu64, index);
  out += buffer;
  return out;
}

std::uint64_t derive_seed(std::uint64_t campaign_seed, std::uint64_t scenario_index,
                          std::string_view stream) noexcept {
  std::uint64_t state = campaign_seed ^ common::fnv1a(stream);
  std::uint64_t mixed = common::splitmix64(state);
  state = mixed ^ (scenario_index * 0x9e3779b97f4a7c15ULL);
  mixed = common::splitmix64(state);
  // Seed 0 is a valid xoshiro seed here (splitmix expansion), but keep
  // campaign-visible seeds nonzero for readability in reports.
  return mixed != 0 ? mixed : 1;
}

}  // namespace dear::scenario
