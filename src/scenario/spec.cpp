#include "scenario/spec.hpp"

#include <cinttypes>
#include <cstdio>

namespace dear::scenario {

std::string_view to_string(Workload workload) noexcept {
  switch (workload) {
    case Workload::kBrakeDear:
      return "dear";
    case Workload::kBrakeNondet:
      return "nondet";
    case Workload::kAcc:
      return "acc";
  }
  return "unknown";
}

std::string_view to_string(Transport transport) noexcept {
  switch (transport) {
    case Transport::kSomeIp:
      return "someip";
    case Transport::kLocal:
      return "local";
  }
  return "unknown";
}

bool ScenarioSpec::expect_deterministic() const noexcept {
  if (workload == Workload::kBrakeNondet) {
    return false;
  }
  return net_drop_probability == 0.0 && svc_latency_max <= kSvcLatencyBound &&
         deadline_scale >= 1.0 && exec_time_scale <= 1.0;
}

std::uint64_t ScenarioSpec::digest_group() const noexcept {
  std::uint64_t state = common::fnv1a(to_string(workload));
  const auto mix = [&state](std::uint64_t value) {
    state ^= value + 0x9e3779b97f4a7c15ULL;
    std::uint64_t s = state;
    state = common::splitmix64(s);
  };
  mix(frames);
  mix(sensor_seed);
  const auto bits = [](double value) {
    std::uint64_t out = 0;
    static_assert(sizeof(out) == sizeof(value));
    __builtin_memcpy(&out, &value, sizeof(out));
    return out;
  };
  mix(bits(sensor_faults.drop_probability));
  mix(bits(sensor_faults.stuck_probability));
  mix(bits(sensor_faults.noise_probability));
  mix(bits(deadline_scale));
  return state;
}

std::string ScenarioSpec::describe() const {
  char buffer[160];
  std::snprintf(buffer, sizeof(buffer),
                "%s/%s/drop%.3f/dup%.3f/lat%" PRId64 "-%" PRId64 "us/dl%.2f/xt%.2f",
                std::string(to_string(workload)).c_str(),
                std::string(to_string(transport)).c_str(), net_drop_probability,
                net_duplicate_probability, svc_latency_min / kMicrosecond,
                svc_latency_max / kMicrosecond, deadline_scale, exec_time_scale);
  std::string out(buffer);
  if (sensor_faults.any()) {
    std::snprintf(buffer, sizeof(buffer), "/sf-d%.3f-s%.3f-n%.3f", sensor_faults.drop_probability,
                  sensor_faults.stuck_probability, sensor_faults.noise_probability);
    out += buffer;
  }
  std::snprintf(buffer, sizeof(buffer), "/i%" PRIu64, index);
  out += buffer;
  return out;
}

std::uint64_t derive_seed(std::uint64_t campaign_seed, std::uint64_t scenario_index,
                          std::string_view stream) noexcept {
  std::uint64_t state = campaign_seed ^ common::fnv1a(stream);
  std::uint64_t mixed = common::splitmix64(state);
  state = mixed ^ (scenario_index * 0x9e3779b97f4a7c15ULL);
  mixed = common::splitmix64(state);
  // Seed 0 is a valid xoshiro seed here (splitmix expansion), but keep
  // campaign-visible seeds nonzero for readability in reports.
  return mixed != 0 ? mixed : 1;
}

}  // namespace dear::scenario
