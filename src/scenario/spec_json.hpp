// Flat JSON (de)serialization of ScenarioSpec — the file format consumed
// by `dear_lint --scenario` and emitted for reproducibility alongside
// analysis reports. No external JSON dependency: the format is a single
// flat object (one nested "sensor_faults" object), parsed by a small
// recursive-descent reader. Unknown keys are rejected so a typo in a
// scenario file fails loudly instead of silently linting the defaults.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "scenario/spec.hpp"

namespace dear::scenario {

/// Serializes every knob (durations in ns). Round-trips through
/// spec_from_json bit-exactly for the integer fields and through the
/// shortest-representation printf for the doubles.
[[nodiscard]] std::string spec_to_json(const ScenarioSpec& spec);

/// Parses a scenario file: fields default to ScenarioSpec{} values and
/// may be overridden individually. Returns std::nullopt and fills
/// `error` on malformed input or unknown keys.
[[nodiscard]] std::optional<ScenarioSpec> spec_from_json(std::string_view text,
                                                         std::string* error = nullptr);

}  // namespace dear::scenario
