// Campaign = parameter grid over ScenarioSpec knobs.
//
// A CampaignSpec holds a base scenario plus one value list per sweepable
// axis; expand() takes the cartesian product and yields the scenario
// matrix in a deterministic order. Empty axes keep the base value, so a
// campaign that sweeps nothing is a single scenario, and every added axis
// multiplies the matrix. `replicas` adds a platform-timing axis: each grid
// point is run with that many distinct platform seeds, all derived from
// (campaign seed, scenario index) — the axis along which the DEAR digests
// must not move while the nondet error prevalence does.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "scenario/spec.hpp"

namespace dear::scenario {

struct CampaignSpec {
  std::string name{"campaign"};
  /// Root of every derived seed in the campaign.
  std::uint64_t campaign_seed{1};
  /// Template scenario; expansion overwrites index, name, platform_seed
  /// and sensor_seed plus every swept knob.
  ScenarioSpec base{};
  /// Platform-timing replicas per grid point (>= 1).
  std::uint64_t replicas{1};

  // --- axes (empty = keep the base value) -----------------------------------
  std::vector<Workload> workloads;
  std::vector<Transport> transports;
  std::vector<double> net_drop_probabilities;
  std::vector<double> net_duplicate_probabilities;
  /// (min, max) service-link latency ranges.
  std::vector<std::pair<Duration, Duration>> svc_latency_ranges;
  std::vector<double> clock_drift_ppms;
  std::vector<double> deadline_scales;
  std::vector<double> exec_time_scales;
  std::vector<sim::SensorFaultModel> sensor_fault_models;
  std::vector<ft::ServiceFaultModel> service_fault_models;
  std::vector<ft::RetryBudget> retry_budgets;

  /// Number of scenarios expand() will produce.
  [[nodiscard]] std::uint64_t grid_size() const noexcept;

  /// Materializes the scenario matrix. Deterministic: scenario i of two
  /// calls with equal specs is identical, platform seeds depend only on
  /// (campaign_seed, i), and the sensor seed only on campaign_seed.
  [[nodiscard]] std::vector<ScenarioSpec> expand() const;
};

}  // namespace dear::scenario
