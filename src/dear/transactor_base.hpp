// Common base for the four DEAR transactors.
//
// "DEAR provides four distinct transactors, each implemented as a reactor
// and enabling the composition of reactors through regular AUTOSAR service
// interfaces" (paper §III.B). The base holds the configuration, the
// binding whose timestamp bypass the transactor uses, and the error
// counters that make protocol violations observable — "the reactor
// semantics ... translates any violation of one of the assumptions
// directly into observable errors" (paper §IV.B).
#pragma once

#include <atomic>
#include <cstdint>

#include "ara/com/transport_binding.hpp"
#include "dear/config.hpp"
#include "dear/tag_codec.hpp"
#include "reactor/runtime.hpp"

namespace dear::transact {

class Transactor : public reactor::Reactor {
 public:
  Transactor(std::string name, reactor::Environment& environment,
             ara::com::TransportBinding& binding, TransactorConfig config)
      : Reactor(std::move(name), environment), binding_(binding), config_(config) {}

  [[nodiscard]] const TransactorConfig& config() const noexcept { return config_; }
  [[nodiscard]] ara::com::TransportBinding& binding() noexcept { return binding_; }

  /// Messages sent with a tag attached.
  [[nodiscard]] std::uint64_t messages_sent() const noexcept { return sent_.load(); }
  /// Tagged messages accepted and released into the reactor network.
  [[nodiscard]] std::uint64_t messages_released() const noexcept { return released_.load(); }
  /// Messages whose safe-to-process tag was already in the logical past
  /// (the L/E bound assumption was violated).
  [[nodiscard]] std::uint64_t tardy_messages() const noexcept { return tardy_.load(); }
  /// Messages arriving without a tag (counted under both policies).
  [[nodiscard]] std::uint64_t untagged_messages() const noexcept { return untagged_.load(); }
  /// Untagged or tardy messages dropped under UntaggedPolicy::kFail.
  [[nodiscard]] std::uint64_t dropped_messages() const noexcept { return dropped_.load(); }
  /// Sending-reaction deadline violations (message was not sent).
  [[nodiscard]] std::uint64_t deadline_violations() const noexcept {
    return deadline_violations_.load();
  }
  /// Remote/communication errors observed on method futures.
  [[nodiscard]] std::uint64_t remote_errors() const noexcept { return remote_errors_.load(); }

  [[nodiscard]] std::uint64_t total_errors() const noexcept {
    return tardy_messages() + dropped_messages() + deadline_violations() + remote_errors();
  }

 protected:
  /// Computes the release tag for a received wire tag and schedules the
  /// value on `action` following the safe-to-process rule. Shared by all
  /// receiving transactors (Figure 3, steps 10/21).
  template <typename T>
  void release_received(reactor::PhysicalAction<T>& action, const T& value) {
    const auto wire = binding_.collect_received_tag();
    if (!wire.has_value()) {
      untagged_.fetch_add(1, std::memory_order_relaxed);
      if (config_.untagged == UntaggedPolicy::kFail) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      // Backward compatibility: tag with physical reception time, like a
      // sporadic sensor input.
      action.schedule(value);
      released_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    reactor::Tag release = from_wire(*wire);
    release.time += config_.release_offset();
    if (action.schedule_at(release, value)) {
      released_.fetch_add(1, std::memory_order_relaxed);
    } else {
      tardy_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  void count_sent() noexcept { sent_.fetch_add(1, std::memory_order_relaxed); }
  void count_deadline_violation() noexcept {
    deadline_violations_.fetch_add(1, std::memory_order_relaxed);
  }
  void count_remote_error() noexcept { remote_errors_.fetch_add(1, std::memory_order_relaxed); }

 private:
  ara::com::TransportBinding& binding_;
  TransactorConfig config_;
  std::atomic<std::uint64_t> sent_{0};
  std::atomic<std::uint64_t> released_{0};
  std::atomic<std::uint64_t> tardy_{0};
  std::atomic<std::uint64_t> untagged_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> deadline_violations_{0};
  std::atomic<std::uint64_t> remote_errors_{0};
};

}  // namespace dear::transact
