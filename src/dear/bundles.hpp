// Descriptor-derived DEAR transactor bundles.
//
// A reactor-based SWC that talks through a service interface needs, per
// member, one ara typed part *and* the matching DEAR transactor (paper
// §III.B). ClientSide<I> and ServerSide<I> derive both from the same
// compile-time ServiceInterface descriptor that generates the proxies and
// skeletons (ara/meta/service_interface.hpp):
//
//   * ClientSide<I> owns a ServiceProxy and, per member: ProxyEvent +
//     ClientEventTransactor, ProxyMethod + ClientMethodTransactor, or
//     FieldClientParts + ClientFieldTransactor.
//   * ServerSide<I> owns a ServiceSkeleton (offered on construction) and,
//     per member: SkeletonEvent + ServerEventTransactor, SkeletonMethod +
//     ServerMethodTransactor, or FieldServerParts + ServerFieldTransactor.
//
// The transactor for a member is accessed through the descriptor constant:
//
//   dear::ServerSide<VideoAdapter> adapter("adapter", env, rt, kInstance, tc);
//   env.connect(logic.out, adapter.tx(VideoAdapter::frame).in);
//
// Note on fields: a ServerSide field member deliberately instantiates the
// *raw* FieldServerParts (no SkeletonField) — field state and get/set
// semantics live in the server logic reactor, which is exactly what makes
// the field deterministic. Wiring both a SkeletonField and a server field
// transactor to the same ids would double-register the get/set methods.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>

#include "ara/generated.hpp"
#include "ara/runtime.hpp"
#include "dear/event_transactors.hpp"
#include "dear/field_transactors.hpp"
#include "dear/method_transactors.hpp"

namespace dear::transact {

/// CRTP mixin aggregating the Transactor error counters of anything that
/// exposes `for_each_transactor(f)` — the bundles below and the
/// AppBuilder (app-wide totals) share it.
template <typename Derived>
struct TransactorStats {
  [[nodiscard]] std::uint64_t deadline_violations() const noexcept {
    return sum([](const Transactor& t) { return t.deadline_violations(); });
  }
  [[nodiscard]] std::uint64_t tardy_messages() const noexcept {
    return sum([](const Transactor& t) { return t.tardy_messages(); });
  }
  [[nodiscard]] std::uint64_t untagged_messages() const noexcept {
    return sum([](const Transactor& t) { return t.untagged_messages(); });
  }
  [[nodiscard]] std::uint64_t dropped_messages() const noexcept {
    return sum([](const Transactor& t) { return t.dropped_messages(); });
  }
  [[nodiscard]] std::uint64_t remote_errors() const noexcept {
    return sum([](const Transactor& t) { return t.remote_errors(); });
  }
  [[nodiscard]] std::uint64_t total_errors() const noexcept {
    return sum([](const Transactor& t) { return t.total_errors(); });
  }

 private:
  template <typename F>
  [[nodiscard]] std::uint64_t sum(F&& f) const noexcept {
    std::uint64_t total = 0;
    static_cast<const Derived*>(this)->for_each_transactor(
        [&](const Transactor& t) { total += f(t); });
    return total;
  }
};

namespace detail {

/// Shared construction context handed to every member part.
struct BundleContext {
  const std::string& prefix;
  reactor::Environment& environment;
  ara::com::TransportBinding& binding;
  const TransactorConfig& config;
};

// --- client-side parts ----------------------------------------------------------

template <typename M>
struct ClientPart;  // primary template intentionally undefined

template <typename T, someip::EventId Id>
struct ClientPart<ara::meta::Event<T, Id>> {
  ara::ProxyEvent<T> event;
  ClientEventTransactor<T> rx;

  ClientPart(const ara::meta::Event<T, Id>& member, BundleContext& context,
             ara::ServiceProxy& proxy)
      : event(proxy, Id),
        rx(context.prefix + "." + member.name, context.environment, event, context.binding,
           context.config) {}

  [[nodiscard]] auto& transactor() noexcept { return rx; }
  template <typename F>
  void each_transactor(F&& f) const {
    f(rx);
  }
};

template <typename Req, typename Res, someip::MethodId Id>
struct ClientPart<ara::meta::Method<Req, Res, Id>> {
  ara::ProxyMethod<Res, Req> method;
  ClientMethodTransactor<Req, Res> call;

  ClientPart(const ara::meta::Method<Req, Res, Id>& member, BundleContext& context,
             ara::ServiceProxy& proxy)
      : method(proxy, Id),
        call(context.prefix + "." + member.name, context.environment, method, context.binding,
             context.config) {}

  [[nodiscard]] auto& transactor() noexcept { return call; }
  template <typename F>
  void each_transactor(F&& f) const {
    f(call);
  }
};

template <typename T, someip::MethodId G, someip::MethodId S, someip::EventId N>
struct ClientPart<ara::meta::Field<T, G, S, N>> {
  FieldClientParts<T> parts;
  ClientFieldTransactor<T> field;

  ClientPart(const ara::meta::Field<T, G, S, N>& member, BundleContext& context,
             ara::ServiceProxy& proxy)
      : parts(proxy, ara::FieldIds{G, S, N}),
        field(context.prefix + "." + member.name, context.environment, parts, context.binding,
              context.config) {}

  [[nodiscard]] auto& transactor() noexcept { return field; }
  template <typename F>
  void each_transactor(F&& f) const {
    f(field.get);
    f(field.set);
    f(field.notify);
  }
};

// --- server-side parts ----------------------------------------------------------

template <typename M>
struct ServerPart;  // primary template intentionally undefined

template <typename T, someip::EventId Id>
struct ServerPart<ara::meta::Event<T, Id>> {
  ara::SkeletonEvent<T> event;
  ServerEventTransactor<T> tx;

  ServerPart(const ara::meta::Event<T, Id>& member, BundleContext& context,
             ara::ServiceSkeleton& skeleton)
      : event(skeleton, Id),
        tx(context.prefix + "." + member.name, context.environment, event, context.binding,
           context.config) {}

  [[nodiscard]] auto& transactor() noexcept { return tx; }
  template <typename F>
  void each_transactor(F&& f) const {
    f(tx);
  }
};

template <typename Req, typename Res, someip::MethodId Id>
struct ServerPart<ara::meta::Method<Req, Res, Id>> {
  ara::SkeletonMethod<Res, Req> method;
  ServerMethodTransactor<Req, Res> call;

  ServerPart(const ara::meta::Method<Req, Res, Id>& member, BundleContext& context,
             ara::ServiceSkeleton& skeleton)
      : method(skeleton, Id),
        call(context.prefix + "." + member.name, context.environment, method, context.binding,
             context.config) {}

  [[nodiscard]] auto& transactor() noexcept { return call; }
  template <typename F>
  void each_transactor(F&& f) const {
    f(call);
  }
};

template <typename T, someip::MethodId G, someip::MethodId S, someip::EventId N>
struct ServerPart<ara::meta::Field<T, G, S, N>> {
  FieldServerParts<T> parts;
  ServerFieldTransactor<T> field;

  ServerPart(const ara::meta::Field<T, G, S, N>& member, BundleContext& context,
             ara::ServiceSkeleton& skeleton)
      : parts(skeleton, ara::FieldIds{G, S, N}),
        field(context.prefix + "." + member.name, context.environment, parts, context.binding,
              context.config) {}

  [[nodiscard]] auto& transactor() noexcept { return field; }
  template <typename F>
  void each_transactor(F&& f) const {
    f(field.get);
    f(field.set);
    f(field.notify);
  }
};

[[nodiscard]] inline ara::com::TransportBinding& require_binding(ara::Runtime& runtime,
                                                                 ara::InstanceIdentifier instance,
                                                                 const char* interface_name) {
  ara::com::TransportBinding* binding = runtime.binding_for(instance);
  if (binding == nullptr) {
    throw std::logic_error(std::string("no transport backend attached for ") + interface_name +
                           " (" + instance.to_string() + ")");
  }
  return *binding;
}

}  // namespace detail

/// Client-side transactor bundle for interface I: one proxy plus the
/// client transactor(s) for every member, wired to `runtime`'s deployed
/// backend for the instance.
template <ara::meta::ServiceDescriptor I>
class ClientSide : public TransactorStats<ClientSide<I>> {
 public:
  using Interface = I;

  ClientSide(std::string name, reactor::Environment& environment, ara::Runtime& runtime,
             someip::InstanceId instance, net::Endpoint server, TransactorConfig config)
      : name_(std::move(name)),
        config_(config),
        binding_(detail::require_binding(runtime, {I::kInterface.service, instance},
                                         I::kInterface.name)),
        context_{name_, environment, binding_, config_},
        proxy_(runtime, {I::kInterface.service, instance}, server),
        parts_(context_, proxy_) {}

  /// Resolves the server endpoint through service discovery (the service
  /// must already be offered).
  ClientSide(std::string name, reactor::Environment& environment, ara::Runtime& runtime,
             someip::InstanceId instance, TransactorConfig config)
      : ClientSide(std::move(name), environment, runtime, instance,
                   resolve(runtime, {I::kInterface.service, instance}), config) {}

  /// The DEAR transactor for a member: ClientEventTransactor (port .out),
  /// ClientMethodTransactor (.request/.response) or ClientFieldTransactor
  /// (.get/.set/.notify).
  template <typename M>
  [[nodiscard]] auto& tx(const M&) noexcept {
    return parts_.template at<ara::meta::index_of<I, M>()>().transactor();
  }

  [[nodiscard]] ara::ServiceProxy& proxy() noexcept { return proxy_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const TransactorConfig& config() const noexcept { return config_; }

  template <typename F>
  void for_each_transactor(F&& f) const {
    parts_.for_each([&](const auto& part) { part.each_transactor(f); });
  }

 private:
  static net::Endpoint resolve(ara::Runtime& runtime, ara::InstanceIdentifier instance) {
    const auto endpoint = runtime.resolve(instance);
    if (!endpoint.has_value()) {
      throw std::logic_error("ClientSide<" + std::string(I::kInterface.name) + ">: " +
                             instance.to_string() +
                             " is not offered (offer all ServerSide bundles first)");
    }
    return *endpoint;
  }

  std::string name_;
  TransactorConfig config_;
  ara::com::TransportBinding& binding_;
  detail::BundleContext context_;
  // A plain ServiceProxy, not Proxy<I>: the bundle's member parts own the
  // typed proxy pieces, so a generated proxy would duplicate them.
  ara::ServiceProxy proxy_;
  ara::meta::MemberParts<I, detail::ClientPart> parts_;
};

/// Server-side transactor bundle for interface I: one skeleton (offered on
/// construction) plus the server transactor(s) for every member.
template <ara::meta::ServiceDescriptor I>
class ServerSide : public TransactorStats<ServerSide<I>> {
 public:
  using Interface = I;

  ServerSide(std::string name, reactor::Environment& environment, ara::Runtime& runtime,
             someip::InstanceId instance, TransactorConfig config,
             ara::MethodCallProcessingMode mode = ara::MethodCallProcessingMode::kEvent)
      : name_(std::move(name)),
        config_(config),
        binding_(detail::require_binding(runtime, {I::kInterface.service, instance},
                                         I::kInterface.name)),
        context_{name_, environment, binding_, config_},
        skeleton_(runtime, {I::kInterface.service, instance}, mode),
        parts_(context_, skeleton_) {
    skeleton_.OfferService();
  }

  /// The DEAR transactor for a member: ServerEventTransactor (port .in),
  /// ServerMethodTransactor (.request/.response) or ServerFieldTransactor
  /// (.get/.set/.notify).
  template <typename M>
  [[nodiscard]] auto& tx(const M&) noexcept {
    return parts_.template at<ara::meta::index_of<I, M>()>().transactor();
  }

  [[nodiscard]] ara::ServiceSkeleton& skeleton() noexcept { return skeleton_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const TransactorConfig& config() const noexcept { return config_; }

  template <typename F>
  void for_each_transactor(F&& f) const {
    parts_.for_each([&](const auto& part) { part.each_transactor(f); });
  }

 private:
  std::string name_;
  TransactorConfig config_;
  ara::com::TransportBinding& binding_;
  detail::BundleContext context_;
  ara::ServiceSkeleton skeleton_;
  ara::meta::MemberParts<I, detail::ServerPart> parts_;
};

}  // namespace dear::transact

namespace dear {

// The bundles are the DEAR-framework face of the descriptor API; export
// them at the framework namespace alongside AppBuilder.
template <typename I>
using ClientSide = transact::ClientSide<I>;
template <typename I>
using ServerSide = transact::ServerSide<I>;

}  // namespace dear
