// Umbrella header for the DEAR framework (Discrete Events for AUTOSAR):
// the reactor runtime plus the transactors that bridge reactor programs to
// AUTOSAR AP service interfaces.
#pragma once

#include "dear/app_builder.hpp"
#include "dear/bundles.hpp"
#include "dear/config.hpp"
#include "dear/event_transactors.hpp"
#include "dear/field_transactors.hpp"
#include "dear/method_transactors.hpp"
#include "dear/tag_codec.hpp"
#include "dear/transactor_base.hpp"
#include "reactor/runtime.hpp"
