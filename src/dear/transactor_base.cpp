#include "dear/transactor_base.hpp"

// The transactor base is header-only; this translation unit anchors the
// library and instantiates nothing.
