// Client and server method transactors (paper §III.B, Figure 3).
//
// The numbered steps below refer to Figure 3 of the paper:
//
//   client reactor --(1)--> ClientMethodTransactor
//     reaction (deadline Dc): deposit tc+Dc in the bypass (2), invoke the
//     proxy method (3); the modified binding attaches the tag (5) and the
//     message crosses the network (6).
//   ServerMethodTransactor: the skeleton handler fires (9), collects tc+Dc
//     from the bypass (10) and schedules an action at tc+Dc+L+E; the
//     reaction to that action forwards the arguments to the server logic
//     (11). The server logic answers on the response port (12); the
//     response reaction (deadline Ds) deposits ts+Ds (13) and fulfills the
//     promise (14), causing the skeleton to transmit the tagged response
//     (16, 17).
//   Back at the client, the response resolves the future (20); the
//     transactor collects ts+Ds (21), schedules an action at ts+Ds+L+E and
//     its reaction emits the result on the output port (22).
//
// Methods with multiple parameters are modeled with a single request
// struct (as generated proxy code would bundle them).
#pragma once

#include <deque>
#include <mutex>

#include "ara/method.hpp"
#include "dear/transactor_base.hpp"

namespace dear::transact {

template <typename Req, typename Res>
class ClientMethodTransactor final : public Transactor {
 public:
  /// Event with the method arguments; sending deadline Dc applies here.
  reactor::Input<Req> request{"request", this};
  /// Emits the method result at tag ts + Ds + L + E.
  reactor::Output<Res> response{"response", this};

  ClientMethodTransactor(std::string name, reactor::Environment& environment,
                         ara::ProxyMethod<Res, Req>& method, ara::com::TransportBinding& binding,
                         TransactorConfig config)
      : Transactor(std::move(name), environment, binding, config), method_(method) {
    add_reaction("on_request",
                 [this] {
                   // (1)-(3): tag the outgoing call with tc + Dc.
                   const reactor::Tag out_tag = current_tag().delay(this->config().deadline);
                   this->binding().attach_send_tag(to_wire(out_tag));
                   count_sent();
                   ara::Future<Res> future = method_(request.get());
                   future.then([this](const ara::Result<Res>& result) {
                     if (!result.has_value()) {
                       count_remote_error();
                       return;
                     }
                     // (20)-(21): release at ts + Ds + L + E.
                     release_received(response_arrival_, result.value());
                   });
                 })
        .triggered_by(request)
        .with_deadline(this->config().deadline, [this] { count_deadline_violation(); });

    add_reaction("on_response", [this] { response.set(response_arrival_.get_ptr()); })
        .triggered_by(response_arrival_)
        .writes(response);
  }

 private:
  ara::ProxyMethod<Res, Req>& method_;
  reactor::PhysicalAction<Res> response_arrival_{"response_arrival", this};
};

template <typename Req, typename Res>
class ServerMethodTransactor final : public Transactor {
 public:
  /// Emits the method arguments into the server logic at tag tc + Dc + L + E.
  reactor::Output<Req> request{"request", this};
  /// The server logic's reply; sending deadline Ds applies here. Replies
  /// must arrive in request order (the server logic reacts to each request
  /// event exactly once).
  reactor::Input<Res> response{"response", this};

  ServerMethodTransactor(std::string name, reactor::Environment& environment,
                         ara::SkeletonMethod<Res, Req>& method, ara::com::TransportBinding& binding,
                         TransactorConfig config)
      : Transactor(std::move(name), environment, binding, config) {
    method.set_immediate_handler([this](const Req& arguments) -> ara::Future<Res> {
      // (9)-(10): runs on the skeleton dispatch path.
      ara::Promise<Res> promise;
      ara::Future<Res> future = promise.get_future();
      {
        const std::lock_guard<std::mutex> lock(pending_mutex_);
        pending_.push_back(promise);
      }
      const std::uint64_t released_before = messages_released();
      release_received(request_arrival_, arguments);
      if (messages_released() == released_before) {
        // Tardy or dropped: the request never enters the reactor network,
        // so fail its promise immediately.
        const std::lock_guard<std::mutex> lock(pending_mutex_);
        pending_.back().SetError(ara::ComErrc::kCommunicationTimeout);
        pending_.pop_back();
      }
      return future;
    });

    add_reaction("on_request", [this] { request.set(request_arrival_.get_ptr()); })
        .triggered_by(request_arrival_)
        .writes(request);

    add_reaction("on_response",
                 [this] {
                   // (12)-(14): tag the response with ts + Ds and fulfill
                   // the promise; the skeleton then transmits it.
                   ara::Promise<Res> promise;
                   {
                     const std::lock_guard<std::mutex> lock(pending_mutex_);
                     if (pending_.empty()) {
                       return;  // response without a matching request
                     }
                     promise = pending_.front();
                     pending_.pop_front();
                   }
                   const reactor::Tag out_tag = current_tag().delay(this->config().deadline);
                   this->binding().attach_send_tag(to_wire(out_tag));
                   count_sent();
                   promise.set_value(response.get());
                 })
        .triggered_by(response)
        .with_deadline(this->config().deadline, [this] {
          // The response missed its deadline: observable error; the client
          // receives a remote error instead of a stale value.
          count_deadline_violation();
          const std::lock_guard<std::mutex> lock(pending_mutex_);
          if (!pending_.empty()) {
            pending_.front().SetError(ara::ComErrc::kRemoteError);
            pending_.pop_front();
          }
        });
  }

 private:
  reactor::PhysicalAction<Req> request_arrival_{"request_arrival", this};
  std::mutex pending_mutex_;
  std::deque<ara::Promise<Res>> pending_;
};

}  // namespace dear::transact
