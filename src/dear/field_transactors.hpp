// Field transactor bundles (paper §III.B).
//
// "Since fields are composed of a get method, a set method and an event,
// interaction with fields requires the use of one event and two method
// transactors." These bundles aggregate exactly those transactors; the
// ara-side pieces (two methods + one notifier event) are grouped in
// FieldServerParts / FieldClientParts so a service skeleton or proxy can
// declare a DEAR-managed field in one line.
#pragma once

#include "ara/field.hpp"
#include "dear/event_transactors.hpp"
#include "dear/method_transactors.hpp"

namespace dear::transact {

/// ara-side pieces of a field on the server (raw methods + event; state
/// and get/set semantics live in the server logic reactor, which is what
/// makes the field deterministic).
template <typename T>
struct FieldServerParts {
  FieldServerParts(ara::ServiceSkeleton& skeleton, ara::FieldIds ids)
      : get(skeleton, ids.get), set(skeleton, ids.set), notifier(skeleton, ids.notify) {}

  ara::SkeletonMethod<T, reactor::Empty> get;
  ara::SkeletonMethod<T, T> set;
  ara::SkeletonEvent<T> notifier;
};

/// ara-side pieces of a field on the client.
template <typename T>
struct FieldClientParts {
  FieldClientParts(ara::ServiceProxy& proxy, ara::FieldIds ids)
      : get(proxy, ids.get), set(proxy, ids.set), notifier(proxy, ids.notify) {}

  ara::ProxyMethod<T, reactor::Empty> get;
  ara::ProxyMethod<T, T> set;
  ara::ProxyEvent<T> notifier;
};

/// Server-side bundle: wire the server logic reactor to the exposed ports.
/// The logic owns the field state: it reacts to get_request/set_request
/// and answers on get_response/set_response; updates flow into notify_in.
template <typename T>
class ServerFieldTransactor {
 public:
  ServerFieldTransactor(const std::string& name, reactor::Environment& environment,
                        FieldServerParts<T>& parts, ara::com::TransportBinding& binding,
                        TransactorConfig config)
      : get(name + ".get", environment, parts.get, binding, config),
        set(name + ".set", environment, parts.set, binding, config),
        notify(name + ".notify", environment, parts.notifier, binding, config) {}

  ServerMethodTransactor<reactor::Empty, T> get;
  ServerMethodTransactor<T, T> set;
  ServerEventTransactor<T> notify;

  [[nodiscard]] std::uint64_t total_errors() const noexcept {
    return get.total_errors() + set.total_errors() + notify.total_errors();
  }
};

/// Client-side bundle.
template <typename T>
class ClientFieldTransactor {
 public:
  ClientFieldTransactor(const std::string& name, reactor::Environment& environment,
                        FieldClientParts<T>& parts, ara::com::TransportBinding& binding,
                        TransactorConfig config)
      : get(name + ".get", environment, parts.get, binding, config),
        set(name + ".set", environment, parts.set, binding, config),
        notify(name + ".notify", environment, parts.notifier, binding, config) {}

  ClientMethodTransactor<reactor::Empty, T> get;
  ClientMethodTransactor<T, T> set;
  ClientEventTransactor<T> notify;

  [[nodiscard]] std::uint64_t total_errors() const noexcept {
    return get.total_errors() + set.total_errors() + notify.total_errors();
  }
};

}  // namespace dear::transact
