// Client and server event transactors (paper §III.B).
//
// AP events are one-way server→client notifications, so the *server* side
// sends (with deadline Ds folded into the wire tag) and the *client* side
// receives and applies the safe-to-process rule. These two transactors
// carry the brake-assistant pipeline in the case study.
#pragma once

#include "ara/event.hpp"
#include "dear/transactor_base.hpp"

namespace dear::transact {

/// Server role: forwards events produced by the server logic to the AP
/// service event.
template <typename T>
class ServerEventTransactor final : public Transactor {
 public:
  /// Event samples from the server logic; sending deadline Ds applies.
  reactor::Input<T> in{"in", this};

  ServerEventTransactor(std::string name, reactor::Environment& environment,
                        ara::SkeletonEvent<T>& event, ara::com::TransportBinding& binding,
                        TransactorConfig config)
      : Transactor(std::move(name), environment, binding, config), event_(event) {
    add_reaction("on_event",
                 [this] {
                   const reactor::Tag out_tag = current_tag().delay(this->config().deadline);
                   this->binding().attach_send_tag(to_wire(out_tag));
                   count_sent();
                   event_.Send(in.get());
                 })
        .triggered_by(in)
        .with_deadline(this->config().deadline, [this] {
          // Missed deadline: the sample is not sent — an observable error
          // rather than silent nondeterminism.
          count_deadline_violation();
        });
  }

 private:
  ara::SkeletonEvent<T>& event_;
};

/// Client role: subscribes to an AP service event and releases samples into
/// the reactor network at tag t + L + E (t already includes the sender's D).
template <typename T>
class ClientEventTransactor final : public Transactor {
 public:
  /// Emits received samples at their safe-to-process tag.
  reactor::Output<T> out{"out", this};

  ClientEventTransactor(std::string name, reactor::Environment& environment,
                        ara::ProxyEvent<T>& event, ara::com::TransportBinding& binding,
                        TransactorConfig config)
      : Transactor(std::move(name), environment, binding, config), event_(event) {
    event_.SetImmediateReceiveHandler(
        [this](const T& sample) { release_received(arrival_, sample); });
    event_.Subscribe();

    add_reaction("on_arrival", [this] { out.set(arrival_.get_ptr()); })
        .triggered_by(arrival_)
        .writes(out);
  }

  /// Subscription churn hooks (fault-injection scenarios): drop and
  /// re-establish the underlying ara::com subscription at runtime. While
  /// unsubscribed, samples are simply not received — the DEAR release
  /// logic is untouched, so the first sample after a resubscribe releases
  /// by the ordinary wire-tag rule.
  void unsubscribe() { event_.Unsubscribe(); }
  void resubscribe() {
    if (!event_.subscribed()) {
      event_.Subscribe();
    }
  }
  [[nodiscard]] bool subscribed() const noexcept { return event_.subscribed(); }

 private:
  ara::ProxyEvent<T>& event_;
  reactor::PhysicalAction<T> arrival_{"arrival", this};
};

}  // namespace dear::transact
