// Conversions between reactor tags and the SOME/IP wire tag, plus the
// SOME/IP codec for the Empty signal payload.
#pragma once

#include "reactor/fwd.hpp"
#include "reactor/tag.hpp"
#include "someip/message.hpp"
#include "someip/serialization.hpp"

namespace dear::transact {

[[nodiscard]] someip::WireTag to_wire(const reactor::Tag& tag) noexcept;
[[nodiscard]] reactor::Tag from_wire(const someip::WireTag& wire) noexcept;

}  // namespace dear::transact

namespace dear::reactor {

// ADL codecs so Empty-typed payloads (pure signals, e.g. field get
// requests) can travel through ara::com methods and events.
inline void someip_serialize(someip::Writer& writer, const Empty&) { writer.write_u8(0); }
inline void someip_deserialize(someip::Reader& reader, Empty&) { (void)reader.read_u8(); }

}  // namespace dear::reactor
