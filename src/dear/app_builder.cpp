#include "dear/app_builder.hpp"

#include <string>

#include "analysis/app_facts.hpp"
#include "analysis/report.hpp"
#include "analysis/rules.hpp"

namespace dear {

analysis::Report AppBuilder::validate() const { return validate(analysis::Gate::kAll); }

analysis::Report AppBuilder::validate(analysis::Gate gate) const {
  analysis::Report report;
  report.workload = "app";
  report.facts = analysis::extract_app(*this);
  report.diagnostics = analysis::check_structure(report.facts);
  if (analysis::has_gating_errors(report.diagnostics, gate)) {
    std::string what = "AppBuilder::validate: the constructed application is not deterministic:";
    for (const analysis::Diagnostic& diagnostic : report.diagnostics) {
      if (diagnostic.severity == analysis::Severity::kError) {
        what += "\n  [";
        what += analysis::rule_id(diagnostic.rule);
        what += "] " + diagnostic.subject + ": " + diagnostic.message;
      }
    }
    throw analysis::AnalysisError(what, report.diagnostics);
  }
  return report;
}

}  // namespace dear
