#include "dear/app_builder.hpp"

#include <string>

#include "analysis/app_facts.hpp"
#include "analysis/plan.hpp"
#include "analysis/report.hpp"
#include "analysis/rules.hpp"
#include "reactor/graph.hpp"

namespace dear {

void AppBuilder::apply_schedule_plans(const analysis::StaticPlan& plan) {
  for (const auto& node : nodes_) {
    // A node without reactions (e.g. a proxy-only monitor) compiles to no
    // level table; hand it the empty plan. apply_plan still validates the
    // entry count against the live graph, so a missing table for a node
    // that *does* have reactions throws as a stale plan.
    node->environment().set_schedule_plan(plan.find(node->name()) != nullptr
                                              ? plan.node_plan(node->name())
                                              : reactor::SchedulePlan{});
  }
}

analysis::Report AppBuilder::validate() const { return validate(analysis::Gate::kAll); }

analysis::Report AppBuilder::validate(analysis::Gate gate) const {
  analysis::Report report;
  report.workload = "app";
  report.facts = analysis::extract_app(*this);
  report.diagnostics = analysis::check_structure(report.facts);
  if (analysis::has_gating_errors(report.diagnostics, gate)) {
    std::string what = "AppBuilder::validate: the constructed application is not deterministic:";
    for (const analysis::Diagnostic& diagnostic : report.diagnostics) {
      if (diagnostic.severity == analysis::Severity::kError) {
        what += "\n  [";
        what += analysis::rule_id(diagnostic.rule);
        what += "] " + diagnostic.subject + ": " + diagnostic.message;
      }
    }
    throw analysis::AnalysisError(what, report.diagnostics);
  }
  return report;
}

}  // namespace dear
