// Declarative assembly of DEAR reactor applications on the DES testbed.
//
// An application in the paper's deployment model is a set of SWC processes
// ("nodes"), each hosting logic reactors bound to AP service interfaces
// through transactors, plus a deployment decision per service instance
// (which transport backend carries it). AppBuilder turns the ~100 lines of
// per-node boilerplate that used to be written by hand (runtime, reactor
// environment, DES driver, skeleton/proxy parts, transactor wiring,
// backend attachment) into a declaration:
//
//   dear::AppBuilder app(kernel, network, discovery, executor, rng, config);
//   auto& radar = app.node("radar", kRadarEp, 0x31);
//   auto& logic = radar.logic<RadarLogic>(cost_model);
//   auto& scan  = radar.serve<RadarService>(kInstance);
//   radar.connect(logic.out, scan.tx(RadarService::scan).in);
//   ...
//   app.start();
//   kernel.run_until(horizon);
//
// Ordering contract (enforced by exceptions, mirroring ara::com service
// discovery): declare every serve<I>() before the require<I>()/proxy<I>()
// that consumes it — skeletons are offered on construction and clients
// resolve the offer. Deployment is declarative: configuring a LocalHub
// moves every service instance of the app onto the zero-copy in-process
// backend (PR 1's BindingRegistry); nothing else in the app changes, and
// determinism makes the two deployments observably identical.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "ara/com/local_binding.hpp"
#include "ara/generated.hpp"
#include "ara/runtime.hpp"
#include "common/rng.hpp"
#include "dear/bundles.hpp"
#include "net/network.hpp"
#include "reactor/sim_driver.hpp"
#include "sim/kernel.hpp"

namespace dear {

namespace analysis {
struct Report;
struct StaticPlan;
enum class Gate : std::uint8_t;
}

class AppBuilder : public transact::TransactorStats<AppBuilder> {
 public:
  struct Config {
    /// Default transactor configuration (deadline, L, E, untagged policy)
    /// applied to every bundle that does not override it.
    transact::TransactorConfig transactor{};
    /// When set, every node attaches a LocalBinding to this hub and every
    /// served/required instance is deployed onto the in-process backend
    /// instead of SOME/IP.
    ara::com::LocalHub* local_hub{nullptr};
    /// Per-node reactor environment configuration. keepalive is forced on:
    /// transactors schedule physical actions from the receive path.
    reactor::Environment::Config environment{};
  };

  class Node;

  /// One transactor as declared through a node, with the context the
  /// static verifier needs: which node hosts it and which side of the
  /// service it plays.
  struct TransactorRecord {
    const transact::Transactor* transactor{nullptr};
    const Node* node{nullptr};
    bool server{false};
  };

  /// One end-to-end latency budget declared on a served descriptor
  /// (ara::meta::EndToEndBudget), resolved to the serving node. Consumed
  /// by the static timing analyzer (analysis/timing.hpp, DEAR-LAT-001).
  struct BudgetRecord {
    std::string member;  // "<Interface>.<member>"
    const Node* node{nullptr};
    Duration budget{0};
  };

  AppBuilder(sim::Kernel& kernel, net::Network& network, someip::ServiceDiscovery& discovery,
             common::Executor& dispatcher, common::Rng& platform_rng)
      : AppBuilder(kernel, network, discovery, dispatcher, platform_rng, Config{}) {}

  AppBuilder(sim::Kernel& kernel, net::Network& network, someip::ServiceDiscovery& discovery,
             common::Executor& dispatcher, common::Rng& platform_rng, Config config)
      : kernel_(kernel),
        network_(network),
        discovery_(discovery),
        dispatcher_(dispatcher),
        platform_rng_(platform_rng),
        config_(config),
        sim_clock_(kernel) {
    config_.environment.keepalive = true;
  }

  AppBuilder(const AppBuilder&) = delete;
  AppBuilder& operator=(const AppBuilder&) = delete;

  /// One SWC process: an ara runtime, a reactor environment and a DES
  /// driver, plus ownership of the logic reactors and bundles declared on
  /// it. The driver's execution-cost stream is "cost.<name>" off the
  /// app's platform rng.
  class Node {
   public:
    Node(AppBuilder& app, std::string name, net::Endpoint endpoint, someip::ClientId client_id)
        : app_(app),
          name_(std::move(name)),
          runtime_(app.network_, app.discovery_, app.dispatcher_, endpoint, client_id),
          environment_(app.sim_clock_, app.config_.environment),
          driver_(environment_, app.kernel_, app.platform_rng_.stream("cost." + name_)) {
      if (app_.config_.local_hub != nullptr) {
        runtime_.attach_backend(ara::com::BackendKind::kLocal,
                                std::make_unique<ara::com::LocalBinding>(
                                    *app_.config_.local_hub, app_.dispatcher_,
                                    runtime_.endpoint(), runtime_.binding().client_id()));
      }
    }

    Node(const Node&) = delete;
    Node& operator=(const Node&) = delete;

    /// Constructs a logic reactor R(environment, args...) owned by the node.
    template <typename R, typename... Args>
    R& logic(Args&&... args) {
      return own<R>(environment_, std::forward<Args>(args)...);
    }

    /// Offers interface I at `instance` with the server transactor bundle.
    template <typename I>
    transact::ServerSide<I>& serve(someip::InstanceId instance) {
      return serve<I>(instance, app_.config_.transactor);
    }
    template <typename I>
    transact::ServerSide<I>& serve(someip::InstanceId instance,
                                   transact::TransactorConfig config) {
      deploy<I>(instance);
      auto& bundle = own<transact::ServerSide<I>>(bundle_name<I>(), environment_, runtime_,
                                                  instance, config);
      register_transactors(bundle, /*server=*/true);
      register_budgets<I>();
      return bundle;
    }

    /// Subscribes to interface I at `instance` with the client transactor
    /// bundle; the serving node must have declared serve<I>() already.
    template <typename I>
    transact::ClientSide<I>& require(someip::InstanceId instance) {
      return require<I>(instance, app_.config_.transactor);
    }
    template <typename I>
    transact::ClientSide<I>& require(someip::InstanceId instance,
                                     transact::TransactorConfig config) {
      deploy<I>(instance);
      auto& bundle = own<transact::ClientSide<I>>(bundle_name<I>(), environment_, runtime_,
                                                  instance, config);
      register_transactors(bundle, /*server=*/false);
      return bundle;
    }

    /// A plain descriptor-generated proxy on this node (no transactors):
    /// the escape hatch for untagged legacy-style clients, e.g. monitors.
    template <typename I>
    ara::Proxy<I>& proxy(someip::InstanceId instance) {
      deploy<I>(instance);
      const auto endpoint = runtime_.resolve({I::kInterface.service, instance});
      if (!endpoint.has_value()) {
        throw std::logic_error("AppBuilder node '" + name_ + "': " +
                               std::string(I::kInterface.name) +
                               " is not offered (declare serve<I>() first)");
      }
      return own<ara::Proxy<I>>(runtime_, instance, *endpoint);
    }

    template <typename T>
    void connect(reactor::Port<T>& from, reactor::Port<T>& to) {
      environment_.connect(from, to);
    }

    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] ara::Runtime& runtime() noexcept { return runtime_; }
    [[nodiscard]] reactor::Environment& environment() noexcept { return environment_; }
    [[nodiscard]] const reactor::Environment& environment() const noexcept {
      return environment_;
    }
    [[nodiscard]] reactor::SimDriver& driver() noexcept { return driver_; }

   private:
    friend class AppBuilder;

    struct Holder {
      virtual ~Holder() = default;
    };
    template <typename T>
    struct HolderOf final : Holder {
      T value;
      template <typename... Args>
      explicit HolderOf(Args&&... args) : value(std::forward<Args>(args)...) {}
    };

    template <typename T, typename... Args>
    T& own(Args&&... args) {
      auto holder = std::make_unique<HolderOf<T>>(std::forward<Args>(args)...);
      T& ref = holder->value;
      owned_.push_back(std::move(holder));
      return ref;
    }

    template <typename I>
    void deploy(someip::InstanceId instance) {
      if (app_.config_.local_hub != nullptr) {
        runtime_.deploy({I::kInterface.service, instance}, ara::com::BackendKind::kLocal);
      }
    }

    template <typename I>
    [[nodiscard]] std::string bundle_name() const {
      return name_ + "." + I::kInterface.name;
    }

    template <typename Bundle>
    void register_transactors(const Bundle& bundle, bool server) {
      bundle.for_each_transactor([this, server](const transact::Transactor& t) {
        app_.transactors_.push_back(TransactorRecord{&t, this, server});
      });
    }

    /// Records every ara::meta::EndToEndBudget declared on I against this
    /// (serving) node. Descriptors without budgets contribute nothing.
    template <typename I>
    void register_budgets() {
      if constexpr (ara::meta::has_end_to_end_budgets<I>) {
        for (const ara::meta::EndToEndBudget& budget : I::kEndToEndBudgets) {
          app_.budgets_.push_back(BudgetRecord{
              std::string(I::kInterface.name) + "." + budget.member, this,
              static_cast<Duration>(budget.budget_ns)});
        }
      }
    }

    AppBuilder& app_;
    std::string name_;
    ara::Runtime runtime_;
    reactor::Environment environment_;
    reactor::SimDriver driver_;
    std::vector<std::unique_ptr<Holder>> owned_;
  };

  /// Declares an SWC process. Node references stay valid for the app's
  /// lifetime.
  Node& node(std::string name, net::Endpoint endpoint, someip::ClientId client_id) {
    nodes_.push_back(std::make_unique<Node>(*this, std::move(name), endpoint, client_id));
    return *nodes_.back();
  }

  /// Assembles every node's reactor topology and starts the DES drivers.
  /// Call after all wiring; the kernel still needs to be run by the caller.
  void start() {
    for (const auto& node : nodes_) {
      node->driver_.start();
    }
  }

  // --- app-wide protocol-error accounting -------------------------------------
  // (deadline_violations() etc. come from the TransactorStats mixin.)

  /// Invokes f(const transact::Transactor&) for every transactor declared
  /// through any node, in declaration order.
  template <typename F>
  void for_each_transactor(F&& f) const {
    for (const TransactorRecord& record : transactors_) {
      f(*record.transactor);
    }
  }

  /// Runs the static determinism verifier (src/analysis/) over the
  /// constructed application: extracts the fact table from every node's
  /// reactor graph plus the cross-binding channels, evaluates the
  /// structural rules, and throws analysis::AnalysisError when a finding
  /// passes the gate (kAll: any error; kStructural: graph/tag errors
  /// only — timing-budget findings stay in the report so deliberately
  /// out-of-envelope experiment runs can proceed). Call after wiring,
  /// before start(). Draws no rng stream and executes no event —
  /// digests cannot move.
  analysis::Report validate() const;  // gates on Gate::kAll
  analysis::Report validate(analysis::Gate gate) const;

  /// Installs the per-node level tables of a compiled StaticPlan
  /// (analysis/plan.hpp) into every node's reactor environment, so
  /// assemble() skips the runtime level derivation. Call after wiring,
  /// before start(); throws std::logic_error when the plan does not match
  /// this app's topology (stale plan).
  void apply_schedule_plans(const analysis::StaticPlan& plan);

  [[nodiscard]] const std::vector<std::unique_ptr<Node>>& nodes() const noexcept {
    return nodes_;
  }
  [[nodiscard]] const std::vector<TransactorRecord>& transactor_records() const noexcept {
    return transactors_;
  }
  [[nodiscard]] const std::vector<BudgetRecord>& budget_records() const noexcept {
    return budgets_;
  }

  [[nodiscard]] const Config& config() const noexcept { return config_; }
  [[nodiscard]] sim::Kernel& kernel() noexcept { return kernel_; }

 private:
  sim::Kernel& kernel_;
  net::Network& network_;
  someip::ServiceDiscovery& discovery_;
  common::Executor& dispatcher_;
  common::Rng& platform_rng_;
  Config config_;
  reactor::SimClock sim_clock_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<TransactorRecord> transactors_;
  std::vector<BudgetRecord> budgets_;
};

}  // namespace dear
