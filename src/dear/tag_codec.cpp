#include "dear/tag_codec.hpp"

namespace dear::transact {

someip::WireTag to_wire(const reactor::Tag& tag) noexcept {
  return someip::WireTag{tag.time, tag.microstep};
}

reactor::Tag from_wire(const someip::WireTag& wire) noexcept {
  return reactor::Tag{wire.time, wire.microstep};
}

}  // namespace dear::transact
