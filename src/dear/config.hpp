// Transactor configuration (paper §III).
#pragma once

#include "common/time.hpp"

namespace dear::transact {

/// What to do with messages arriving without an attached tag.
///
/// "The default behavior of our transactors is to fail when receiving
/// messages without an associated timestamp, but they can also be
/// configured to tag received messages with the physical time at which
/// they are received" (paper §III.B).
enum class UntaggedPolicy : std::uint8_t {
  kFail,
  kPhysicalTime,
};

struct TransactorConfig {
  /// Deadline D on the transactor's sending reaction: the bound on how far
  /// logical time may lag physical time when the message leaves. The wire
  /// tag is t + D.
  Duration deadline{5 * kMillisecond};
  /// Worst-case network latency L assumed by safe-to-process analysis.
  Duration latency_bound{5 * kMillisecond};
  /// Maximum clock synchronization error E between the communicating
  /// platforms (0 when both SWCs share a platform, paper §IV.B).
  Duration clock_error_bound{0};
  UntaggedPolicy untagged{UntaggedPolicy::kFail};

  /// The safe-to-process offset added to a received wire tag: a message
  /// tagged t may be released into the receiving reactor network at
  /// t + L + E (the sender already folded its D into the wire tag).
  [[nodiscard]] Duration release_offset() const noexcept {
    return latency_bound + clock_error_bound;
  }
};

}  // namespace dear::transact
