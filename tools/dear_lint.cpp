// dear_lint — static determinism verifier CLI.
//
// Lints workloads, scenario files and campaign grids without executing a
// single event: the analyzer constructs the reactor graphs (build-only),
// extracts the fact tables and evaluates the determinism rules
// (docs/static_analysis.md). Emits the "analysis-report-v1" JSON document
// and gates CI through its exit code.
//
// Exit codes:
//   0  all checks passed
//   1  error diagnostics found while --deny-errors, or none while
//      --expect-errors, or a static verdict disagreed with the runtime
//      oracle (expect_deterministic())
//   2  usage / input error (unreadable file, malformed scenario JSON)

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/analyzer.hpp"
#include "analysis/report.hpp"
#include "scenario/presets.hpp"
#include "scenario/spec.hpp"
#include "scenario/spec_json.hpp"

namespace {

void print_usage(std::FILE* stream) {
  std::fputs(
      "usage: dear_lint [options]\n"
      "\n"
      "Statically verifies determinism of DEAR workloads and scenarios.\n"
      "\n"
      "options:\n"
      "  --workload dear|nondet|acc   lint a workload with default knobs (repeatable)\n"
      "  --scenario FILE.json         lint a scenario file (repeatable; see\n"
      "                               docs/static_analysis.md for the format)\n"
      "  --campaign smoke|fault-sweep|throughput|fault-tolerance\n"
      "                               lint every scenario of a preset campaign grid\n"
      "  --out FILE                   write the analysis-report-v1 JSON document\n"
      "  --timing                     run the end-to-end timing pass: chain latency\n"
      "                               bounds, DEAR-LAT rules and the compiled\n"
      "                               schedule plan (attached to the report)\n"
      "  --workers N                  worker count the level-width note\n"
      "                               (DEAR-LAT-003) checks against (default 1)\n"
      "  --list-rules                 print the rule catalog (id, severity, summary)\n"
      "                               and exit; with --json as a JSON array\n"
      "  --json                       JSON output for --list-rules\n"
      "  --deny-errors                exit 1 if any error diagnostic is reported\n"
      "  --expect-errors              exit 1 if NO error diagnostic is reported\n"
      "                               (regression oracle for known-nondet inputs)\n"
      "  --quiet                      suppress the per-diagnostic listing\n"
      "  --help                       show this help\n"
      "\n"
      "Without --deny-errors/--expect-errors the exit code reports oracle\n"
      "agreement: nonzero iff any static verdict disagrees with the\n"
      "scenario's expect_deterministic() contract.\n",
      stream);
}

std::optional<dear::scenario::ScenarioSpec> workload_spec(const std::string& name) {
  dear::scenario::ScenarioSpec spec;
  if (name == "dear") {
    spec.workload = dear::scenario::Workload::kBrakeDear;
  } else if (name == "nondet") {
    spec.workload = dear::scenario::Workload::kBrakeNondet;
  } else if (name == "acc") {
    spec.workload = dear::scenario::Workload::kAcc;
  } else {
    return std::nullopt;
  }
  spec.name = name;
  return spec;
}

std::optional<std::vector<dear::scenario::ScenarioSpec>> campaign_specs(const std::string& name) {
  // Frame counts / seeds only shape scenario identity strings here — the
  // analyzer never executes, so keep them at the CI smoke sizes.
  if (name == "smoke") {
    return dear::scenario::presets::smoke(/*frames=*/200, /*campaign_seed=*/1).expand();
  }
  if (name == "fault-sweep") {
    return dear::scenario::presets::fault_sweep(/*frames=*/200, /*campaign_seed=*/1).expand();
  }
  if (name == "throughput") {
    return dear::scenario::presets::throughput(/*scenario_count=*/8, /*frames=*/200,
                                               /*campaign_seed=*/1)
        .expand();
  }
  if (name == "fault-tolerance") {
    return dear::scenario::presets::fault_tolerance_sweep(/*frames=*/200, /*campaign_seed=*/1)
        .expand();
  }
  return std::nullopt;
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

int list_rules(bool as_json) {
  using dear::analysis::kAllRules;
  using dear::analysis::rule_id;
  using dear::analysis::rule_severity;
  using dear::analysis::rule_summary;
  using dear::analysis::to_string;
  if (as_json) {
    std::printf("[\n");
    const std::size_t count = std::size(kAllRules);
    for (std::size_t i = 0; i < count; ++i) {
      const auto rule = kAllRules[i];
      const std::string_view id = rule_id(rule);
      const std::string_view severity = to_string(rule_severity(rule));
      const std::string_view summary = rule_summary(rule);
      std::printf("  {\"id\": \"%.*s\", \"severity\": \"%.*s\", \"summary\": \"%.*s\"}%s\n",
                  static_cast<int>(id.size()), id.data(), static_cast<int>(severity.size()),
                  severity.data(), static_cast<int>(summary.size()), summary.data(),
                  i + 1 < count ? "," : "");
    }
    std::printf("]\n");
  } else {
    for (const auto rule : kAllRules) {
      const std::string_view id = rule_id(rule);
      const std::string_view severity = to_string(rule_severity(rule));
      const std::string_view summary = rule_summary(rule);
      std::printf("%-14.*s %-8.*s %.*s\n", static_cast<int>(id.size()), id.data(),
                  static_cast<int>(severity.size()), severity.data(),
                  static_cast<int>(summary.size()), summary.data());
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<dear::scenario::ScenarioSpec> specs;
  std::string out_path;
  bool deny_errors = false;
  bool expect_errors = false;
  bool quiet = false;
  bool want_list_rules = false;
  bool json_output = false;
  dear::analysis::AnalyzeOptions analyze_options;

  auto next_value = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "dear_lint: %s requires a value\n", flag);
      return nullptr;
    }
    return argv[++i];
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage(stdout);
      return 0;
    }
    if (arg == "--deny-errors") {
      deny_errors = true;
    } else if (arg == "--list-rules") {
      want_list_rules = true;
    } else if (arg == "--json") {
      json_output = true;
    } else if (arg == "--timing") {
      analyze_options.timing = true;
    } else if (arg == "--workers") {
      const char* value = next_value(i, "--workers");
      if (value == nullptr) {
        return 2;
      }
      const long parsed = std::strtol(value, nullptr, 10);
      if (parsed < 1) {
        std::fprintf(stderr, "dear_lint: --workers requires a positive integer, got '%s'\n",
                     value);
        return 2;
      }
      analyze_options.workers = static_cast<unsigned>(parsed);
    } else if (arg == "--expect-errors") {
      expect_errors = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--workload") {
      const char* value = next_value(i, "--workload");
      if (value == nullptr) {
        return 2;
      }
      auto spec = workload_spec(value);
      if (!spec) {
        std::fprintf(stderr, "dear_lint: unknown workload '%s' (dear|nondet|acc)\n", value);
        return 2;
      }
      specs.push_back(std::move(*spec));
    } else if (arg == "--scenario") {
      const char* value = next_value(i, "--scenario");
      if (value == nullptr) {
        return 2;
      }
      auto text = read_file(value);
      if (!text) {
        std::fprintf(stderr, "dear_lint: cannot read scenario file '%s'\n", value);
        return 2;
      }
      std::string error;
      auto spec = dear::scenario::spec_from_json(*text, &error);
      if (!spec) {
        std::fprintf(stderr, "dear_lint: %s: %s\n", value, error.c_str());
        return 2;
      }
      specs.push_back(std::move(*spec));
    } else if (arg == "--campaign") {
      const char* value = next_value(i, "--campaign");
      if (value == nullptr) {
        return 2;
      }
      auto expanded = campaign_specs(value);
      if (!expanded) {
        std::fprintf(stderr,
                     "dear_lint: unknown campaign '%s' "
                     "(smoke|fault-sweep|throughput|fault-tolerance)\n",
                     value);
        return 2;
      }
      specs.insert(specs.end(), expanded->begin(), expanded->end());
    } else if (arg == "--out") {
      const char* value = next_value(i, "--out");
      if (value == nullptr) {
        return 2;
      }
      out_path = value;
    } else {
      std::fprintf(stderr, "dear_lint: unknown option '%s'\n", arg.c_str());
      print_usage(stderr);
      return 2;
    }
  }

  if (want_list_rules) {
    return list_rules(json_output);
  }

  if (specs.empty()) {
    std::fputs("dear_lint: nothing to lint (pass --workload, --scenario or --campaign)\n",
               stderr);
    print_usage(stderr);
    return 2;
  }

  const std::vector<dear::analysis::Report> reports =
      dear::analysis::analyze_scenarios(specs, analyze_options);

  std::size_t errors = 0;
  std::size_t warnings = 0;
  std::size_t mismatches = 0;
  for (const auto& report : reports) {
    errors += report.error_count();
    warnings += report.warning_count();
    if (!report.verdict_matches()) {
      ++mismatches;
    }
    if (!quiet) {
      std::printf("%s %s/%s: %zu error(s), %zu warning(s)%s\n",
                  report.deterministic() ? "ok  " : "FAIL", report.workload.c_str(),
                  report.scenario.c_str(), report.error_count(), report.warning_count(),
                  report.verdict_matches() ? "" : "  [ORACLE MISMATCH]");
      for (const auto& diagnostic : report.diagnostics) {
        const std::string_view id = rule_id(diagnostic.rule);
        const std::string_view severity = to_string(diagnostic.severity);
        std::printf("  [%.*s] %.*s %s: %s\n", static_cast<int>(id.size()), id.data(),
                    static_cast<int>(severity.size()), severity.data(),
                    diagnostic.subject.c_str(), diagnostic.message.c_str());
      }
    }
  }

  if (!out_path.empty()) {
    std::ofstream out(out_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "dear_lint: cannot write '%s'\n", out_path.c_str());
      return 2;
    }
    out << dear::analysis::report_collection_json(reports);
  }

  std::printf("dear_lint: %zu scenario(s), %zu error(s), %zu warning(s), %zu oracle mismatch(es)\n",
              reports.size(), errors, warnings, mismatches);

  if (deny_errors && errors > 0) {
    return 1;
  }
  if (expect_errors && errors == 0) {
    std::fputs("dear_lint: expected error diagnostics but found none\n", stderr);
    return 1;
  }
  return mismatches == 0 ? 0 : 1;
}
